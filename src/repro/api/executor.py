"""Pluggable shard execution for :class:`~repro.api.sharded.ShardedService`.

The sharded facade routes evidence; *where the shard services live* is this
module's concern:

* :class:`InlineExecutor` — every shard is a :class:`Zero07Service` in the
  calling process.  This is the original (and oracle) behavior: cheap,
  deterministic, fully introspectable.
* :class:`ProcessExecutor` — shards live in worker processes.  Bulk evidence
  travels as :mod:`repro.api.wire` binary batches over per-worker pipes, and
  control (tick / report / checkpoint / shutdown) rides the same FIFO pipe as
  small pickled frames, so a sync request implicitly drains everything queued
  before it — deterministic sequencing without extra barriers.

Transport discipline (``ProcessExecutor``): the coordinator's evidence intake
must stay a pure routing pass, so everything else is deferred onto two
pipeline threads:

* the **store lane** folds each submitted run into the coordinator's
  :class:`~repro.api.wire.EvidenceColumnStore` (the merged columns behind
  parallel finalize) in submission order;
* the **wire lane** owns the encoder and every pipe's write end: it encodes
  batches, partitions vectorized runs into per-shard sub-runs, and performs
  the (GIL-releasing, possibly blocking) ``send_bytes`` calls, absorbing pipe
  backpressure without ever blocking the store lane or the coordinator.

``drain_store()`` is the read barrier for the column store; ``drain_wire()``
is the full barrier every sync command sits behind.  ``pause_wire()`` /
``resume_wire()`` let the facade keep encode work out of a measured finalize
window — a paused wire lane just queues; a sync barrier lifts the pause.

Worker discipline: workers drop their priority (``os.nice(19)``) — evidence
intake at the coordinator must never be starved by shard-side analysis,
mirroring the paper's "agents are negligible overhead, the analyzer does the
heavy lifting" split; they ignore ``SIGINT`` (the coordinator coordinates
shutdown) and exit on pipe EOF, so a dying coordinator — clean exit,
``SIGINT``, crash — always reaps the pool: no orphans.

Any transport failure (worker death, broken pipe, protocol error) surfaces as
:class:`ShardExecutorError` on the next executor call — never a hang, never a
partial result.
"""

from __future__ import annotations

import os
import pickle
import signal
import threading
import traceback
import weakref
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.events import EpochTick, Evidence
from repro.api.wire import EvidenceColumnStore, WireDecoder, WireEncoder
from repro.core.arrays import LinkIndex


class ShardExecutorError(RuntimeError):
    """A shard executor lost a worker or hit a transport/protocol failure."""


#: frame opcodes (first byte of every pipe message).
_OP_BATCH = b"B"  # wire-encoded evidence run
_OP_EVENT = b"E"  # pickled (shard, event) — the per-event slow path
_OP_CONTROL = b"C"  # pickled control tuple; some expect a reply


class ShardExecutor:
    """The execution contract the sharded facade programs against.

    ``submit_runs`` / ``submit_vector_run`` / ``submit_event`` / ``tick`` are
    *asynchronous*: they enqueue work in shard order and return.
    ``evidence_for_epoch`` / ``checkpoint_shards`` / ``restore_shards`` are
    *synchronous*: they only return after every previously submitted command
    has been fully applied (per-shard FIFO ordering makes the barrier
    implicit).  The store/wire hooks are no-ops everywhere the work is
    already synchronous (the inline backend).
    """

    num_shards: int
    workers: int

    def submit_runs(
        self,
        epoch: int,
        stretch: Optional[List[Evidence]],
        sub_runs: Sequence[List[Evidence]],
        owned: bool,
    ) -> None:
        """Hand each shard its (possibly empty) slice of one bulk stretch.

        ``stretch`` is the same events in global order (the column-store
        feed); executors without a store may ignore it.
        """
        raise NotImplementedError

    def submit_vector_run(
        self,
        epoch: int,
        run: List[Evidence],
        shard_ids: np.ndarray,
        seqs: np.ndarray,
        owned: bool,
    ) -> None:
        """Hand over one pre-routed run (``shard_ids[i]`` owns ``run[i]``)."""
        raise NotImplementedError

    def submit_event(self, shard: int, event: Evidence) -> None:
        """Route one event to one shard (the per-event slow path)."""
        raise NotImplementedError

    def tick(self, epoch: int) -> None:
        """Deliver an :class:`EpochTick` to every shard."""
        raise NotImplementedError

    def evidence_for_epoch(self, epoch: int) -> List[Tuple[int, Any]]:
        """Every shard's buffered ``(seq, path)`` records for ``epoch``."""
        raise NotImplementedError

    def checkpoint_shards(self) -> List[Dict[str, Any]]:
        """Per-shard checkpoint payloads, in shard order."""
        raise NotImplementedError

    def restore_shards(
        self, payloads: Sequence[Dict[str, Any]], columns=None
    ) -> None:
        """Rebuild every shard service from its checkpoint payload.

        ``columns`` is the :class:`~repro.api.checkpoint.CheckpointColumns`
        of a binary checkpoint (``None`` for JSON payloads); shard payloads
        carry column markers into it.
        """
        raise NotImplementedError

    def shard_service(self, index: int):
        """The in-process shard service (inline backend only)."""
        raise NotImplementedError

    # -- store/wire pipeline hooks (async backends override) -----------
    def drain_store(self) -> None:
        """Barrier: the column store reflects every submitted run."""

    def mark_dirty(self, epoch: int) -> None:
        """Queue a column-store dirty mark behind earlier submissions."""

    def forget_epoch(self, epoch: int) -> None:
        """Queue a column-store release behind earlier submissions."""

    def pause_wire(self) -> None:
        """Hold back encode/send work (keeps a timed window contention-free)."""

    def resume_wire(self) -> None:
        """Undo :meth:`pause_wire`."""

    def close(self) -> None:
        """Tear down the executor (idempotent)."""
        raise NotImplementedError


class InlineExecutor(ShardExecutor):
    """All shards in the calling process — the original serial behavior."""

    def __init__(self, num_shards: int, service_config: Dict[str, Any]) -> None:
        from repro.api.service import Zero07Service

        self.num_shards = num_shards
        self.workers = 0
        self._config = dict(service_config)
        self._shards = [Zero07Service(**service_config) for _ in range(num_shards)]

    def submit_runs(self, epoch, stretch, sub_runs, owned):
        for shard, sub in enumerate(sub_runs):
            if sub:
                self._shards[shard].ingest_batch(sub, owned=owned)

    def submit_vector_run(self, epoch, run, shard_ids, seqs, owned):
        sub_runs: List[List[Evidence]] = [[] for _ in range(self.num_shards)]
        appends = [sub.append for sub in sub_runs]
        for event, shard in zip(run, shard_ids.tolist()):
            appends[shard](event)
        self.submit_runs(epoch, None, sub_runs, owned)

    def submit_event(self, shard, event):
        self._shards[shard].ingest(event)

    def tick(self, epoch):
        event = EpochTick(epoch)
        for shard in self._shards:
            shard.ingest(event)

    def evidence_for_epoch(self, epoch):
        merged: List[Tuple[int, Any]] = []
        for shard in self._shards:
            merged.extend(shard.evidence_for_epoch(epoch))
        return merged

    def checkpoint_shards(self):
        return [shard.checkpoint().payload for shard in self._shards]

    def restore_shards(self, payloads, columns=None):
        from repro.api.checkpoint import Checkpoint
        from repro.api.service import Zero07Service

        self._shards = [
            Zero07Service.restore(Checkpoint(payload=payload, columns=columns))
            for payload in payloads
        ]

    def shard_service(self, index):
        return self._shards[index]

    def close(self):
        pass


# ----------------------------------------------------------------------
# process backend
# ----------------------------------------------------------------------
class _Lane(threading.Thread):
    """One FIFO pipeline stage: a job queue owned by a dedicated thread.

    A job that raises latches the error on the executor; every producer and
    every barrier re-raises it as :class:`ShardExecutorError`, so a dead
    worker or a codec bug is always a clean failure, never a hang.  The
    ``gate`` lets the owner hold the lane idle without losing queued jobs.
    """

    def __init__(self, name: str, process, latch) -> None:
        super().__init__(name=name, daemon=True)
        self._handle = process
        self._latch = latch
        self.jobs: deque = deque()
        self.cond = threading.Condition()
        self.busy = False
        self.stopped = False
        self.gate = threading.Event()
        self.gate.set()

    def put(self, job) -> None:
        with self.cond:
            self.jobs.append(job)
            self.cond.notify_all()

    def run(self) -> None:
        while True:
            self.gate.wait()
            with self.cond:
                while not self.jobs and not self.stopped and self.gate.is_set():
                    self.cond.wait(0.5)
                if self.stopped and not self.jobs:
                    return
                if not self.jobs or not self.gate.is_set():
                    continue
                job = self.jobs.popleft()
                self.busy = True
            try:
                self._handle(job)
            except BaseException as exc:  # noqa: BLE001 — latch for callers
                self._latch(exc)
                with self.cond:
                    self.busy = False
                    self.cond.notify_all()
                return
            with self.cond:
                self.busy = False
                if not self.jobs:
                    self.cond.notify_all()

    def wait_drained(self, error_check) -> None:
        with self.cond:
            while self.jobs or self.busy:
                error_check()
                self.cond.wait(0.5)
        error_check()

    def stop(self) -> None:
        with self.cond:
            self.stopped = True
            self.gate.set()
            self.cond.notify_all()


def _worker_main(conn, shard_ids: List[int], service_config: Dict[str, Any]) -> None:
    """One worker process: host ``shard_ids``'s services, serve the pipe."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        os.nice(19)  # shard analysis must never starve coordinator intake
    except OSError:  # pragma: no cover - permission-restricted environments
        pass
    from repro.api.checkpoint import Checkpoint
    from repro.api.service import Zero07Service

    decoder = WireDecoder()
    services = {
        shard: Zero07Service(**service_config) for shard in shard_ids
    }
    error: Optional[str] = None
    while True:
        try:
            data = conn.recv_bytes()
        except (EOFError, OSError):
            break  # coordinator is gone — exit, leaving no orphan
        op = data[:1]
        try:
            if op == _OP_BATCH:
                if error is None:
                    shard, epoch, events, seqs = decoder.decode(
                        memoryview(data)[1:]
                    )
                    services[shard].ingest_run(
                        epoch, events, owned=True, seqs=seqs
                    )
            elif op == _OP_EVENT:
                if error is None:
                    shard, event = pickle.loads(data[1:])
                    services[shard].ingest(event)
            elif op == _OP_CONTROL:
                command = pickle.loads(data[1:])
                name = command[0]
                if name == "tick":
                    if error is None:
                        tick = EpochTick(command[1])
                        for service in services.values():
                            service.ingest(tick)
                    continue
                # sync commands always reply — a latched error is the reply.
                if error is not None:
                    conn.send(("error", error))
                    continue
                if name == "ping":
                    conn.send(("ok", sorted(services)))
                elif name == "evidence":
                    conn.send(
                        (
                            "ok",
                            {
                                shard: service.evidence_for_epoch(command[1])
                                for shard, service in services.items()
                            },
                        )
                    )
                elif name == "checkpoint":
                    conn.send(
                        (
                            "ok",
                            {
                                shard: service.checkpoint().payload
                                for shard, service in services.items()
                            },
                        )
                    )
                elif name == "restore":
                    columns = command[2] if len(command) > 2 else None
                    services = {
                        shard: Zero07Service.restore(
                            Checkpoint(payload=payload, columns=columns)
                        )
                        for shard, payload in command[1].items()
                    }
                    decoder = WireDecoder()
                    conn.send(("ok", None))
                elif name == "stats":
                    conn.send(
                        (
                            "ok",
                            {
                                shard: service.stats.as_dict()
                                for shard, service in services.items()
                            },
                        )
                    )
                elif name == "shutdown":
                    conn.send(("ok", None))
                    break
                else:
                    conn.send(("error", f"unknown command {name!r}"))
        except BaseException:  # noqa: BLE001 — latch, report on next sync
            error = traceback.format_exc()
            if op == _OP_CONTROL:
                try:
                    conn.send(("error", error))
                except (BrokenPipeError, OSError):
                    break
    try:
        conn.close()
    except OSError:  # pragma: no cover
        pass


def _terminate_processes(processes) -> None:
    """Best-effort kill used as a GC/exit backstop (idempotent)."""
    for process in processes:
        if process.is_alive():
            process.terminate()
    for process in processes:
        process.join(timeout=1.0)
        if process.is_alive():  # pragma: no cover - stuck in uninterruptible IO
            process.kill()


class ProcessExecutor(ShardExecutor):
    """Shards hosted by ``workers`` OS processes (``shard % workers`` each).

    The executor feeds the coordinator-side :class:`EvidenceColumnStore` (the
    facade hands its store in and reads it back behind :meth:`drain_store`)
    and owns the wire encoder (used only by the wire-lane thread; the restore
    protocol resets both ends' interning tables through the same FIFO, so the
    per-stream watermarks never skew).
    """

    def __init__(
        self,
        num_shards: int,
        service_config: Dict[str, Any],
        workers: Optional[int] = None,
        link_index: Optional[LinkIndex] = None,
        store: Optional[EvidenceColumnStore] = None,
    ) -> None:
        import multiprocessing

        if workers is None:
            workers = num_shards
        if workers < 1:
            raise ValueError("workers must be >= 1")
        workers = min(workers, num_shards)
        self.num_shards = num_shards
        self.workers = workers
        self._store = store
        self._closed = False
        self._error: Optional[BaseException] = None
        self._service_config = dict(service_config)
        self._link_index = link_index
        self._spawn()

    def _spawn(self) -> None:
        """Fork the worker fleet and start the pipeline lanes."""
        import multiprocessing

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context("spawn")

        self._conns = []
        self._processes = []
        for worker in range(self.workers):
            parent_conn, child_conn = context.Pipe(duplex=True)
            shard_ids = [
                s for s in range(self.num_shards) if s % self.workers == worker
            ]
            process = context.Process(
                target=_worker_main,
                args=(child_conn, shard_ids, dict(self._service_config)),
                name=f"repro-shard-worker-{worker}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._processes.append(process)
        self._encoder = WireEncoder(
            streams=self.workers, link_index=self._link_index
        )
        # a respawn must keep interning into the same table the facade's
        # merge path shares, even when the executor was built without one.
        self._link_index = self._encoder.link_index
        # lanes start only after every fork: forking a process that already
        # runs threads is where orphaned locks come from.
        self._wire = _Lane("repro-wire-lane", self._process_wire_job, self._latch)
        self._lane = _Lane("repro-store-lane", self._process_store_job, self._latch)
        self._wire.start()
        self._lane.start()
        self._finalizer = weakref.finalize(
            self, _terminate_processes, list(self._processes)
        )

    def _pipeline_dead(self) -> bool:
        """Whether the transport can no longer deliver work."""
        return self._error is not None or any(
            not process.is_alive() for process in self._processes
        )

    def _respawn(self) -> None:
        """Tear down a dead pipeline and fork a fresh worker fleet.

        Used by :meth:`restore_shards`: a restore overwrites every shard's
        state anyway, so nothing of the dead fleet is worth salvaging — the
        lanes (which exit after latching an error), the pipes and the worker
        processes are all replaced and the error latch is cleared.
        """
        self._lane.stop()
        self._wire.stop()
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        _terminate_processes(self._processes)
        self._finalizer.detach()
        self._error = None
        self._spawn()

    # ------------------------------------------------------------------
    def _worker_of(self, shard: int) -> int:
        return shard % self.workers

    def _latch(self, exc: BaseException) -> None:
        if self._error is None:
            self._error = exc
        for lane in (self._lane, self._wire):
            with lane.cond:
                lane.cond.notify_all()

    def _check_error(self) -> None:
        if self._error is not None:
            raise ShardExecutorError(
                f"shard transport failed: {self._error!r}"
            ) from self._error

    def _check_open(self) -> None:
        if self._closed:
            raise ShardExecutorError("executor is closed")
        self._check_error()

    # -- store lane ----------------------------------------------------
    def _process_store_job(self, job) -> None:
        kind = job[0]
        if kind == "run":
            _, epoch, stretch, sub_runs, seqs = job
            if self._store is not None and stretch is not None:
                self._store.append_run(epoch, stretch, seqs=seqs)
            self._wire.put(("encode", epoch, sub_runs))
        elif kind == "vrun":
            _, epoch, run, shard_ids, seqs = job
            if self._store is not None:
                self._store.append_run(epoch, run, seqs=seqs)
            self._wire.put(("partition", epoch, run, shard_ids))
        elif kind == "dirty":
            if self._store is not None:
                self._store.mark_dirty(job[1])
        elif kind == "forget":
            if self._store is not None:
                self._store.pop(job[1])
        else:  # passthrough frames/restores ride the same FIFO
            self._wire.put(job)

    # -- wire lane -----------------------------------------------------
    def _send_frame(self, worker: Optional[int], frame: bytes) -> None:
        if worker is None:
            for conn in self._conns:
                conn.send_bytes(frame)
        else:
            self._conns[worker].send_bytes(frame)

    def _encode_sub_runs(self, epoch: int, sub_runs) -> List[Tuple[int, bytes]]:
        frames = []
        for shard, sub in enumerate(sub_runs):
            if sub:
                worker = self._worker_of(shard)
                frames.append(
                    (
                        worker,
                        _OP_BATCH
                        + self._encoder.encode_run(worker, shard, epoch, sub),
                    )
                )
        return frames

    def _process_wire_job(self, job) -> None:
        kind = job[0]
        if kind == "encode":
            _, epoch, sub_runs = job
            for worker, frame in self._encode_sub_runs(epoch, sub_runs):
                self._send_frame(worker, frame)
        elif kind == "partition":
            _, epoch, run, shard_ids = job
            sub_runs: List[List[Evidence]] = [[] for _ in range(self.num_shards)]
            appends = [sub.append for sub in sub_runs]
            for event, shard in zip(run, shard_ids.tolist()):
                appends[shard](event)
            for worker, frame in self._encode_sub_runs(epoch, sub_runs):
                self._send_frame(worker, frame)
        elif kind == "frame":
            _, worker, frame = job
            self._send_frame(worker, frame)
        elif kind == "restore":
            # reset the encoder with the decoders, through the same FIFO, so
            # the per-stream interning watermarks stay aligned.
            self._encoder = WireEncoder(
                streams=self.workers, link_index=self._encoder.link_index
            )
            for worker, frame in job[1]:
                self._send_frame(worker, frame)

    # -- pipeline barriers ---------------------------------------------
    def drain_store(self) -> None:
        self._check_error()
        self._lane.wait_drained(self._check_error)

    def drain_wire(self) -> None:
        """Full barrier: every queued frame has been written to its pipe.

        Lifts any :meth:`pause_wire` — a sync command's correctness depends
        on the flush; the pause is only a scheduling hint.
        """
        self.resume_wire()
        self._check_error()
        self._lane.wait_drained(self._check_error)
        self._wire.wait_drained(self._check_error)

    def pause_wire(self) -> None:
        self._wire.gate.clear()
        with self._wire.cond:
            self._wire.cond.notify_all()

    def resume_wire(self) -> None:
        self._wire.gate.set()
        with self._wire.cond:
            self._wire.cond.notify_all()

    def mark_dirty(self, epoch: int) -> None:
        self._check_open()
        self._lane.put(("dirty", epoch))

    def forget_epoch(self, epoch: int) -> None:
        self._check_open()
        self._lane.put(("forget", epoch))

    # -- submissions ----------------------------------------------------
    def submit_runs(self, epoch, stretch, sub_runs, owned):
        self._check_open()
        if owned:
            self._lane.put(("run", epoch, stretch, sub_runs, None))
            return
        # the caller may mutate the events after we return: capture them now
        # (columns + encoded frames), then queue only the immutable bytes.
        self.drain_wire()
        if self._store is not None and stretch is not None:
            self._store.append_run(epoch, stretch)
        for worker, frame in self._encode_sub_runs(epoch, sub_runs):
            self._lane.put(("frame", worker, frame))

    def submit_vector_run(self, epoch, run, shard_ids, seqs, owned):
        self._check_open()
        if owned:
            self._lane.put(("vrun", epoch, run, shard_ids, seqs))
            return
        self.drain_wire()
        if self._store is not None:
            self._store.append_run(epoch, run, seqs=seqs)
        self._process_wire_job(("partition", epoch, list(run), shard_ids))

    def submit_event(self, shard, event):
        self._check_open()
        frame = _OP_EVENT + pickle.dumps(
            (shard, event), protocol=pickle.HIGHEST_PROTOCOL
        )
        self._lane.put(("frame", self._worker_of(shard), frame))

    def tick(self, epoch):
        self._check_open()
        frame = _OP_CONTROL + pickle.dumps(
            ("tick", epoch), protocol=pickle.HIGHEST_PROTOCOL
        )
        self._lane.put(("frame", None, frame))

    # -- sync commands ---------------------------------------------------
    def _sync(self, command: Tuple) -> List[Any]:
        """Broadcast a control request; gather one reply per worker.

        The request rides the pipeline behind everything submitted earlier,
        and FIFO pipes make each worker's reply an implicit barrier over
        everything sent to that worker before it.
        """
        self._check_open()
        frame = _OP_CONTROL + pickle.dumps(command, protocol=pickle.HIGHEST_PROTOCOL)
        self._lane.put(("frame", None, frame))
        self.drain_wire()
        replies = []
        for worker in range(self.workers):
            try:
                status, payload = self._conns[worker].recv()
            except (EOFError, OSError) as exc:
                raise ShardExecutorError(
                    f"shard worker {worker} died before replying to "
                    f"{command[0]!r}"
                ) from exc
            if status != "ok":
                raise ShardExecutorError(
                    f"shard worker {worker} failed during {command[0]!r}:\n"
                    f"{payload}"
                )
            replies.append(payload)
        return replies

    def evidence_for_epoch(self, epoch):
        merged: List[Tuple[int, Any]] = []
        for by_shard in self._sync(("evidence", epoch)):
            for records in by_shard.values():
                merged.extend(records)
        return merged

    def checkpoint_shards(self):
        payloads: Dict[int, Dict[str, Any]] = {}
        for by_shard in self._sync(("checkpoint",)):
            payloads.update(by_shard)
        return [payloads[shard] for shard in range(self.num_shards)]

    def restore_shards(self, payloads, columns=None):
        if self._closed:
            raise ShardExecutorError("executor is closed")
        if self._pipeline_dead():
            # a restore replaces every shard's state, so a fleet that already
            # failed (latched transport error, killed worker) is respawned
            # instead of latching the restore into the dead pipeline.
            self._respawn()
        frames = []
        for worker in range(self.workers):
            by_shard = {
                shard: payloads[shard]
                for shard in range(self.num_shards)
                if self._worker_of(shard) == worker
            }
            frames.append(
                (
                    worker,
                    _OP_CONTROL
                    + pickle.dumps(
                        ("restore", by_shard, columns),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    ),
                )
            )
        self._lane.put(("restore", frames))
        self.drain_wire()
        for worker in range(self.workers):
            try:
                status, payload = self._conns[worker].recv()
            except (EOFError, OSError) as exc:
                raise ShardExecutorError(
                    f"shard worker {worker} died during restore"
                ) from exc
            if status != "ok":
                raise ShardExecutorError(
                    f"shard worker {worker} failed during restore:\n{payload}"
                )

    def ping(self) -> None:
        """Round-trip every worker (tests use this as a liveness barrier)."""
        self._sync(("ping",))

    def stats(self) -> List[Dict[str, Any]]:
        """Per-shard service stats counters, in shard order."""
        merged: Dict[int, Dict[str, Any]] = {}
        for by_shard in self._sync(("stats",)):
            merged.update(by_shard)
        return [merged[shard] for shard in range(self.num_shards)]

    def shard_service(self, index):
        raise ShardExecutorError(
            "shard services live in worker processes under the process "
            "backend — use merged reports, checkpoint_shards() or stats()"
        )

    def close(self):
        if self._closed:
            return
        self._closed = True
        shutdown = _OP_CONTROL + pickle.dumps(("shutdown",))
        try:
            self._lane.put(("frame", None, shutdown))
            self.drain_wire()
        except ShardExecutorError:
            pass
        for conn, process in zip(self._conns, self._processes):
            try:
                if conn.poll(5.0):
                    conn.recv()
            except (EOFError, OSError):
                pass
        self._lane.stop()
        self._wire.stop()
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        for process in self._processes:
            process.join(timeout=5.0)
        _terminate_processes(self._processes)
        self._finalizer.detach()

    @property
    def encoder(self) -> WireEncoder:
        """The executor's wire encoder (shares the facade's link index)."""
        return self._encoder
