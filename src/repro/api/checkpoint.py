"""Checkpointing of streaming-service analysis state.

A :class:`Checkpoint` is a frozen, JSON-serializable snapshot of everything a
:class:`~repro.api.service.Zero07Service` (or
:class:`~repro.api.sharded.ShardedService`) needs to resume *bit-identically*:
the analysis configuration, the epoch bookkeeping, and every open epoch's
evidence records in sequence order.  Finalized epochs' reports are not
checkpointed — they were already delivered to the report sinks; a restored
service picks up exactly where ingestion stopped.

The payload is plain dicts/lists/strings/numbers (see
:mod:`repro.api.events` for the path/link codecs), so checkpoints survive
``json`` round-trips exactly and can be diffed, stored, or shipped between
machines.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Union

from repro.core.blame import BlameConfig

#: payload schema version; bump on incompatible layout changes.
CHECKPOINT_VERSION = 1


def blame_to_dict(config: BlameConfig) -> Dict[str, Any]:
    """Serialize a :class:`BlameConfig` to JSON-ready primitives."""
    return {
        "threshold_fraction": config.threshold_fraction,
        "adjustment": config.adjustment,
        "min_flow_support": config.min_flow_support,
        "max_links": config.max_links,
    }


def blame_from_dict(data: Dict[str, Any]) -> BlameConfig:
    """Rebuild a :class:`BlameConfig` from :func:`blame_to_dict` output."""
    return BlameConfig(
        threshold_fraction=float(data["threshold_fraction"]),
        adjustment=data["adjustment"],
        min_flow_support=int(data["min_flow_support"]),
        max_links=int(data["max_links"]),
    )


@dataclass(frozen=True)
class Checkpoint:
    """A frozen snapshot of a service's resumable analysis state."""

    payload: Dict[str, Any]

    @property
    def kind(self) -> str:
        """``"service"`` or ``"sharded"``."""
        return self.payload.get("kind", "service")

    @property
    def version(self) -> int:
        """The payload schema version the checkpoint was written with."""
        return int(self.payload.get("version", 0))

    def validate(self) -> "Checkpoint":
        """Raise ``ValueError`` when the payload cannot be restored."""
        if self.version != CHECKPOINT_VERSION:
            raise ValueError(
                f"checkpoint version {self.version} != supported {CHECKPOINT_VERSION}"
            )
        if self.kind not in ("service", "sharded"):
            raise ValueError(f"unknown checkpoint kind {self.kind!r}")
        return self

    # ------------------------------------------------------------------
    def to_json(self, indent: int | None = None) -> str:
        """The checkpoint as a JSON document (round-trips exactly)."""
        return json.dumps(self.payload, indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Checkpoint":
        """Parse a checkpoint from :meth:`to_json` output."""
        return cls(payload=json.loads(text)).validate()

    def save(self, path: Union[str, Path]) -> None:
        """Write the checkpoint to ``path`` as indented JSON."""
        Path(path).write_text(self.to_json(indent=2) + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Checkpoint":
        """Read a checkpoint previously written with :meth:`save`."""
        return cls.from_json(Path(path).read_text())
