"""Checkpointing of streaming-service analysis state.

A :class:`Checkpoint` is a frozen snapshot of everything a
:class:`~repro.api.service.Zero07Service` (or
:class:`~repro.api.sharded.ShardedService`) needs to resume *bit-identically*:
the analysis configuration, the epoch bookkeeping, and every open epoch's
evidence records in sequence order.  Finalized epochs' reports are not
checkpointed — they were already delivered to the report sinks; a restored
service picks up exactly where ingestion stopped.

Two serializations of the same payload exist:

* **JSON** (format version 1) — plain dicts/lists/strings/numbers (see
  :mod:`repro.api.events` for the path/link codecs).  Human-readable,
  diffable, and still fully readable and restorable.
* **Binary** (format version 2, the default for :meth:`Checkpoint.save`) — a
  small container: magic ``R7CK``, a zlib-compressed JSON header carrying the
  configuration, counters and string/link interner tables, followed by an
  ``npz`` blob of the dense per-epoch record columns (sequence numbers, flow
  ids, CSR link ids, five-tuple components, ...).  Typically ~20x smaller
  than the JSON body and decoded straight into shared
  :class:`~repro.topology.elements.DirectedLink` objects, which is what makes
  sub-second restores possible.

On top of either format, **delta checkpoints** carry only the evidence that
arrived since a full base checkpoint (new records, records whose
retransmission counts changed, new consumed update seqs) plus the current
counters.  :meth:`Checkpoint.apply_delta` merges a delta onto its base —
verified by a structural fingerprint — yielding a full checkpoint again.
"""

from __future__ import annotations

import gc
import io
import json
import os
import struct
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.api.events import link_from_str, path_from_dict, path_to_dict
from repro.core.blame import BlameConfig
from repro.discovery.agent import DiscoveredPath
from repro.routing.fivetuple import FiveTuple

#: payload schema version written by :meth:`Zero07Service.checkpoint`;
#: version 2 added delta checkpoints and the binary container.
CHECKPOINT_VERSION = 2

#: payload versions :meth:`Checkpoint.validate` accepts (v1 stays readable).
SUPPORTED_CHECKPOINT_VERSIONS = (1, 2)

#: magic prefix of the binary container (followed by a container version).
CHECKPOINT_MAGIC = b"R7CK"

#: binary container layout version (orthogonal to the payload version).
_CONTAINER_VERSION = 1

#: magic + u32 container version + u64 compressed-header length.
_CONTAINER_HEADER = struct.Struct("<4sIQ")


@contextmanager
def gc_paused():
    """Pause the cyclic garbage collector for a bulk-allocation section.

    Restore decodes hundreds of thousands of small objects in one burst;
    every generational collection triggered mid-burst rescans the growing
    heap and roughly doubles restore latency (and its variance).  Nothing
    allocated here is garbage yet, so collection is deferred until the
    section ends.  Reentrant: the collector is only re-enabled by the
    outermost pause, and only if it was enabled on entry.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def blame_to_dict(config: BlameConfig) -> Dict[str, Any]:
    """Serialize a :class:`BlameConfig` to JSON-ready primitives."""
    return {
        "threshold_fraction": config.threshold_fraction,
        "adjustment": config.adjustment,
        "min_flow_support": config.min_flow_support,
        "max_links": config.max_links,
    }


def blame_from_dict(data: Dict[str, Any]) -> BlameConfig:
    """Rebuild a :class:`BlameConfig` from :func:`blame_to_dict` output."""
    return BlameConfig(
        threshold_fraction=float(data["threshold_fraction"]),
        adjustment=data["adjustment"],
        min_flow_support=int(data["min_flow_support"]),
        max_links=int(data["max_links"]),
    )


# ----------------------------------------------------------------------
# columnar record codec (the binary body)
# ----------------------------------------------------------------------
class _Interner:
    """Interns hashable items to dense ids (encode-side string/link tables)."""

    __slots__ = ("ids", "items")

    def __init__(self) -> None:
        self.ids: Dict[Any, int] = {}
        self.items: List[Any] = []

    def intern(self, item) -> int:
        idx = self.ids.get(item)
        if idx is None:
            idx = len(self.items)
            self.ids[item] = idx
            self.items.append(item)
        return idx


@dataclass(frozen=True)
class CheckpointColumns:
    """Decoded binary body: dense record columns + shared interner tables.

    ``links`` holds one :class:`DirectedLink` object per table entry; every
    decoded path shares them, so a restore interns each distinct link once
    through the tally's identity memo instead of once per hop.
    """

    arrays: Dict[str, np.ndarray]
    names: List[str]
    links: List[Any]


#: the per-record columns of one epoch, in encode order.
_RECORD_COLUMNS = (
    ("seq", np.int64),
    ("flow", np.int64),
    ("retr", np.int64),
    ("comp", np.uint8),
    ("pep", np.int64),
    ("len", np.int32),
    ("sh", np.int32),
    ("dh", np.int32),
    ("sip", np.int32),
    ("dip", np.int32),
    ("sp", np.int32),
    ("dp", np.int32),
    ("pr", np.int32),
)


def _encode_records(
    records: List[list],
    prefix: str,
    arrays: Dict[str, np.ndarray],
    names: _Interner,
    links: _Interner,
) -> Dict[str, Any]:
    """Columnize one epoch's ``[[seq, path_dict], ...]`` records."""
    cols: Dict[str, list] = {name: [] for name, _ in _RECORD_COLUMNS}
    hops: List[int] = []
    intern_name = names.intern
    intern_link = links.intern
    for seq, pd in records:
        ft = pd["five_tuple"]
        link_strs = pd["links"]
        cols["seq"].append(seq)
        cols["flow"].append(pd["flow_id"])
        cols["retr"].append(pd["retransmissions"])
        cols["comp"].append(1 if pd["complete"] else 0)
        cols["pep"].append(pd["epoch"])
        cols["len"].append(len(link_strs))
        cols["sh"].append(intern_name(pd["src_host"]))
        cols["dh"].append(intern_name(pd["dst_host"]))
        cols["sip"].append(intern_name(ft[0]))
        cols["dip"].append(intern_name(ft[1]))
        cols["sp"].append(ft[2])
        cols["dp"].append(ft[3])
        cols["pr"].append(ft[4])
        hops.extend(map(intern_link, link_strs))
    for name, dtype in _RECORD_COLUMNS:
        arrays[f"{prefix}_{name}"] = np.asarray(cols[name], dtype=dtype)
    arrays[f"{prefix}_hop"] = np.asarray(hops, dtype=np.int32)
    return {"__columns__": prefix, "count": len(records)}


def _decode_records(
    prefix: str, columns: CheckpointColumns
) -> Tuple[List[int], List[DiscoveredPath]]:
    """Rebuild ``(seqs, paths)`` from one epoch's columns.

    Paths are constructed fresh on every call (so repeated restores from one
    checkpoint never share mutable path objects) but share the decoded
    :class:`DirectedLink` objects and table strings.
    """
    a = columns.arrays
    seqs = a[f"{prefix}_seq"].tolist()
    flows = a[f"{prefix}_flow"].tolist()
    retrs = a[f"{prefix}_retr"].tolist()
    comps = a[f"{prefix}_comp"].tolist()
    peps = a[f"{prefix}_pep"].tolist()
    lens = a[f"{prefix}_len"].tolist()
    shs = a[f"{prefix}_sh"].tolist()
    dhs = a[f"{prefix}_dh"].tolist()
    sips = a[f"{prefix}_sip"].tolist()
    dips = a[f"{prefix}_dip"].tolist()
    sps = a[f"{prefix}_sp"].tolist()
    dps = a[f"{prefix}_dp"].tolist()
    prs = a[f"{prefix}_pr"].tolist()
    hops = a[f"{prefix}_hop"].tolist()
    names = columns.names
    links = columns.links
    # Hoist every table lookup out of the record loop: whole-column maps run
    # through C iterators, the loop then only assembles per-record objects.
    src_ips = list(map(names.__getitem__, sips))
    dst_ips = list(map(names.__getitem__, dips))
    src_hosts = list(map(names.__getitem__, shs))
    dst_hosts = list(map(names.__getitem__, dhs))
    hop_links = list(map(links.__getitem__, hops))
    paths: List[DiscoveredPath] = []
    append = paths.append
    # Restore is on the failover critical path, so the per-record dataclass
    # machinery (``__init__`` + ``FiveTuple.__post_init__`` validation) is
    # bypassed: every value was validated when the checkpointed service first
    # ingested it, and both classes store their fields in a plain ``__dict__``.
    new_path = DiscoveredPath.__new__
    new_ft = FiveTuple.__new__
    set_attr = object.__setattr__
    pos = 0
    for i in range(len(seqs)):
        end = pos + lens[i]
        ft = new_ft(FiveTuple)
        set_attr(
            ft,
            "__dict__",
            {
                "src_ip": src_ips[i],
                "dst_ip": dst_ips[i],
                "src_port": sps[i],
                "dst_port": dps[i],
                "protocol": prs[i],
            },
        )
        path = new_path(DiscoveredPath)
        path.__dict__ = {
            "flow_id": flows[i],
            "five_tuple": ft,
            "src_host": src_hosts[i],
            "dst_host": dst_hosts[i],
            "links": hop_links[pos:end],
            "complete": bool(comps[i]),
            "retransmissions": retrs[i],
            "epoch": peps[i],
        }
        append(path)
        pos = end
    return seqs, paths


def epoch_records(
    entry: Dict[str, Any], columns: Optional[CheckpointColumns]
) -> Tuple[List[int], List[DiscoveredPath]]:
    """``(seqs, fresh path objects)`` of one epoch entry, any serialization."""
    records = entry["records"]
    if isinstance(records, dict):
        return _decode_records(records["__columns__"], columns)
    seqs = [int(seq) for seq, _ in records]
    paths = [path_from_dict(pd) for _, pd in records]
    return seqs, paths


def epoch_retransmission_seqs(
    entry: Dict[str, Any], columns: Optional[CheckpointColumns]
) -> List[int]:
    """The epoch's consumed retransmission-update seqs, any serialization."""
    seqs = entry["retransmission_seqs"]
    if isinstance(seqs, dict):
        return columns.arrays[f"{seqs['__columns__']}_rs"].tolist()
    return [int(s) for s in seqs]


def _epoch_seq_retrans(
    entry: Dict[str, Any], columns: Optional[CheckpointColumns]
) -> Dict[int, int]:
    """``{record seq: retransmission count}`` of one epoch entry."""
    records = entry["records"]
    if isinstance(records, dict):
        prefix = records["__columns__"]
        a = columns.arrays
        return dict(
            zip(a[f"{prefix}_seq"].tolist(), a[f"{prefix}_retr"].tolist())
        )
    return {int(seq): int(pd["retransmissions"]) for seq, pd in records}


def _epoch_records_as_dicts(
    entry: Dict[str, Any], columns: Optional[CheckpointColumns]
) -> List[list]:
    """The epoch's records as JSON-ready ``[[seq, path_dict], ...]``."""
    records = entry["records"]
    if not isinstance(records, dict):
        return records
    seqs, paths = _decode_records(records["__columns__"], columns)
    return [[seq, path_to_dict(path)] for seq, path in zip(seqs, paths)]


def _materialize_entry(
    entry: Dict[str, Any], columns: Optional[CheckpointColumns]
) -> Dict[str, Any]:
    """An epoch entry with every column marker resolved back to JSON lists."""
    out = dict(entry)
    out["records"] = _epoch_records_as_dicts(entry, columns)
    out["retransmission_seqs"] = epoch_retransmission_seqs(entry, columns)
    return out


def _service_sections(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """The service-shaped sub-payloads (the payload itself, or its shards)."""
    if payload.get("kind") == "sharded":
        return list(payload.get("shards", ()))
    return [payload]


# ----------------------------------------------------------------------
# delta checkpoints
# ----------------------------------------------------------------------
def _service_fingerprint(
    payload: Dict[str, Any], columns: Optional[CheckpointColumns]
) -> Dict[str, Any]:
    epochs = {}
    for entry in payload["epochs"]:
        counts = _epoch_seq_retrans(entry, columns)
        epochs[str(entry["epoch"])] = [
            len(counts),
            max(counts) if counts else -1,
            len(epoch_retransmission_seqs(entry, columns)),
        ]
    return {
        "kind": "service",
        "last_finalized": payload["last_finalized"],
        "max_epoch_seen": payload["max_epoch_seen"],
        "epochs": epochs,
    }


def payload_fingerprint(
    payload: Dict[str, Any], columns: Optional[CheckpointColumns] = None
) -> Dict[str, Any]:
    """A structural fingerprint a delta uses to recognize its base.

    Cheap (per-epoch record counts, highest record seq, consumed-update
    counts, finalization markers) but strong enough that applying a delta to
    the wrong base fails loudly instead of merging garbage.
    """
    if payload.get("kind") == "sharded":
        return {
            "kind": "sharded",
            "num_shards": payload["num_shards"],
            "last_finalized": payload["last_finalized"],
            "max_epoch_seen": payload["max_epoch_seen"],
            "shards": [
                _service_fingerprint(shard, columns)
                for shard in payload["shards"]
            ],
        }
    return _service_fingerprint(payload, columns)


#: service-payload keys copied verbatim into deltas / merged checkpoints.
_SERVICE_CONFIG_KEYS = (
    "engine",
    "vote_policy",
    "attribute_noise_flows",
    "blame",
    "retain_reports",
)


def _service_epochs_delta(
    full: Dict[str, Any],
    base: Dict[str, Any],
    base_columns: Optional[CheckpointColumns],
) -> List[Dict[str, Any]]:
    """Per-epoch record/update deltas of ``full`` (dict records) vs ``base``."""
    base_epochs = {entry["epoch"]: entry for entry in base["epochs"]}
    delta_epochs: List[Dict[str, Any]] = []
    for entry in full["epochs"]:
        base_entry = base_epochs.get(entry["epoch"])
        if base_entry is None:
            delta_epochs.append(dict(entry))
            continue
        base_counts = _epoch_seq_retrans(base_entry, base_columns)
        # new records, plus records whose retransmission count was bumped
        # since the base (count updates mutate existing records in place).
        changed = [
            rec
            for rec in entry["records"]
            if base_counts.get(rec[0], -1) != rec[1]["retransmissions"]
        ]
        base_rs = set(epoch_retransmission_seqs(base_entry, base_columns))
        new_rs = [s for s in entry["retransmission_seqs"] if s not in base_rs]
        if (
            not changed
            and not new_rs
            and entry["pending_retransmissions"]
            == base_entry["pending_retransmissions"]
        ):
            continue  # untouched since the base — the merge keeps base's copy
        delta_epochs.append(
            {
                "epoch": entry["epoch"],
                "records": changed,
                "pending_retransmissions": entry["pending_retransmissions"],
                "retransmission_seqs": new_rs,
            }
        )
    return delta_epochs


def service_payload_delta(
    full: Dict[str, Any],
    base: Dict[str, Any],
    base_columns: Optional[CheckpointColumns] = None,
) -> Dict[str, Any]:
    """A delta payload carrying only what changed between ``base`` and ``full``.

    ``full`` must be a freshly built payload with dict records (what
    ``Zero07Service.checkpoint()`` produces); ``base`` may come from any
    serialization.
    """
    delta = {"version": CHECKPOINT_VERSION, "kind": "service", "delta": True}
    for key in _SERVICE_CONFIG_KEYS:
        delta[key] = full[key]
    delta["base"] = _service_fingerprint(base, base_columns)
    delta["max_epoch_seen"] = full["max_epoch_seen"]
    delta["last_finalized"] = full["last_finalized"]
    delta["stats"] = full["stats"]
    delta["epochs"] = _service_epochs_delta(full, base, base_columns)
    return delta


def sharded_payload_delta(
    full: Dict[str, Any],
    base: Dict[str, Any],
    base_columns: Optional[CheckpointColumns] = None,
) -> Dict[str, Any]:
    """A sharded delta payload: per-shard service deltas + routing-state delta.

    ``full`` must be a freshly built sharded payload with dict records (what
    ``ShardedService.checkpoint()`` produces); ``base`` may come from any
    serialization.  Shard-to-host assignment is a pure function of the host
    name, so the facade's ``flow_shard``/``retrans_seqs`` maps only ever
    *grow* within an epoch — the delta carries the new entries and the merge
    rebuilds the rest from the base.
    """
    if full.get("kind") != "sharded" or base.get("kind") != "sharded":
        raise ValueError("sharded_payload_delta needs two sharded payloads")
    if int(full["num_shards"]) != int(base["num_shards"]) or len(
        full["shards"]
    ) != len(base["shards"]):
        raise ValueError(
            "delta base has a different shard layout "
            f"({base['num_shards']} shards vs {full['num_shards']})"
        )
    flow_shard: Dict[str, Dict[str, int]] = {}
    for epoch, flows in full["flow_shard"].items():
        known = base["flow_shard"].get(epoch)
        if known is None:
            flow_shard[epoch] = dict(flows)
            continue
        fresh = {flow: shard for flow, shard in flows.items() if flow not in known}
        if fresh:
            flow_shard[epoch] = fresh
    retrans_seqs: Dict[str, List[int]] = {}
    for epoch, seqs in full["retrans_seqs"].items():
        known = set(base["retrans_seqs"].get(epoch, ()))
        fresh = [seq for seq in seqs if seq not in known]
        if fresh or epoch not in base["retrans_seqs"]:
            retrans_seqs[epoch] = fresh
    return {
        "version": CHECKPOINT_VERSION,
        "kind": "sharded",
        "delta": True,
        "base": payload_fingerprint(base, base_columns),
        "num_shards": full["num_shards"],
        "retain_reports": full["retain_reports"],
        "max_epoch_seen": full["max_epoch_seen"],
        "last_finalized": full["last_finalized"],
        "flow_shard": flow_shard,
        "pending": full["pending"],
        "retrans_seqs": retrans_seqs,
        "shards": [
            service_payload_delta(full_shard, base_shard, base_columns)
            for full_shard, base_shard in zip(full["shards"], base["shards"])
        ],
    }


def _merge_service_epochs(
    base: Dict[str, Any],
    base_columns: Optional[CheckpointColumns],
    delta: Dict[str, Any],
    delta_columns: Optional[CheckpointColumns],
) -> List[Dict[str, Any]]:
    last_finalized = delta["last_finalized"]
    base_epochs = {entry["epoch"]: entry for entry in base["epochs"]}
    delta_epochs = {entry["epoch"]: entry for entry in delta["epochs"]}
    merged: List[Dict[str, Any]] = []
    for epoch in sorted(set(base_epochs) | set(delta_epochs)):
        if last_finalized is not None and epoch <= last_finalized:
            continue  # finalized (and released) since the base was taken
        base_entry = base_epochs.get(epoch)
        delta_entry = delta_epochs.get(epoch)
        if delta_entry is None:
            merged.append(_materialize_entry(base_entry, base_columns))
            continue
        if base_entry is None:
            merged.append(_materialize_entry(delta_entry, delta_columns))
            continue
        by_seq = {
            rec[0]: rec for rec in _epoch_records_as_dicts(base_entry, base_columns)
        }
        for rec in _epoch_records_as_dicts(delta_entry, delta_columns):
            by_seq[rec[0]] = rec  # changed counts replace the base record
        merged.append(
            {
                "epoch": epoch,
                "records": [by_seq[seq] for seq in sorted(by_seq)],
                "pending_retransmissions": delta_entry["pending_retransmissions"],
                "retransmission_seqs": sorted(
                    set(epoch_retransmission_seqs(base_entry, base_columns))
                    | set(epoch_retransmission_seqs(delta_entry, delta_columns))
                ),
            }
        )
    return merged


def _merge_service_payload(
    base: Dict[str, Any],
    base_columns: Optional[CheckpointColumns],
    delta: Dict[str, Any],
    delta_columns: Optional[CheckpointColumns],
) -> Dict[str, Any]:
    expected = delta["base"]
    actual = _service_fingerprint(base, base_columns)
    if expected != actual:
        raise ValueError(
            "delta checkpoint does not match this base (fingerprint mismatch: "
            f"expected {expected}, base is {actual})"
        )
    merged: Dict[str, Any] = {"version": CHECKPOINT_VERSION, "kind": "service"}
    for key in _SERVICE_CONFIG_KEYS:
        merged[key] = delta[key]
    merged["max_epoch_seen"] = delta["max_epoch_seen"]
    merged["last_finalized"] = delta["last_finalized"]
    merged["stats"] = delta["stats"]
    merged["epochs"] = _merge_service_epochs(
        base, base_columns, delta, delta_columns
    )
    return merged


# ----------------------------------------------------------------------
# the checkpoint object
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Checkpoint:
    """A frozen snapshot of a service's resumable analysis state.

    ``payload`` is the JSON-shaped state; ``columns`` is only present on
    checkpoints loaded from the binary container and holds the decoded record
    columns the payload's ``{"__columns__": ...}`` markers point into.
    """

    payload: Dict[str, Any]
    columns: Optional[CheckpointColumns] = field(
        default=None, compare=False, repr=False
    )

    @property
    def kind(self) -> str:
        """``"service"`` or ``"sharded"``."""
        return self.payload.get("kind", "service")

    @property
    def version(self) -> int:
        """The payload schema version the checkpoint was written with."""
        return int(self.payload.get("version", 0))

    @property
    def is_delta(self) -> bool:
        """Whether this is a delta (apply it to its base before restoring)."""
        return bool(self.payload.get("delta", False))

    def validate(self) -> "Checkpoint":
        """Raise ``ValueError`` when the payload cannot be restored."""
        if self.version not in SUPPORTED_CHECKPOINT_VERSIONS:
            raise ValueError(
                f"checkpoint version {self.version} not in supported "
                f"{SUPPORTED_CHECKPOINT_VERSIONS}"
            )
        if self.kind not in ("service", "sharded"):
            raise ValueError(f"unknown checkpoint kind {self.kind!r}")
        return self

    def apply_delta(self, delta: "Checkpoint") -> "Checkpoint":
        """Merge a delta taken against this full checkpoint onto it.

        Returns a full checkpoint equal (payload-wise) to the one
        ``checkpoint()`` would have produced at the delta's capture time.
        The delta's recorded base fingerprint must match this checkpoint.
        """
        self.validate()
        delta.validate()
        if not delta.is_delta:
            raise ValueError("apply_delta needs a delta checkpoint")
        if self.is_delta:
            raise ValueError(
                "the base of apply_delta must be a full checkpoint, not a delta"
            )
        if delta.kind != self.kind:
            raise ValueError(
                f"delta kind {delta.kind!r} does not match base kind {self.kind!r}"
            )
        if self.kind == "service":
            return Checkpoint(
                payload=_merge_service_payload(
                    self.payload, self.columns, delta.payload, delta.columns
                )
            )
        base, patch = self.payload, delta.payload
        expected = patch["base"]
        actual = payload_fingerprint(base, self.columns)
        if expected != actual:
            raise ValueError(
                "delta checkpoint does not match this base (fingerprint "
                f"mismatch: expected {expected}, base is {actual})"
            )
        last_finalized = patch["last_finalized"]

        def keep(epoch_key: str) -> bool:
            return last_finalized is None or int(epoch_key) > last_finalized

        flow_shard = {
            epoch: dict(flows)
            for epoch, flows in base["flow_shard"].items()
            if keep(epoch)
        }
        for epoch, flows in patch["flow_shard"].items():
            flow_shard.setdefault(epoch, {}).update(flows)
        retrans_seqs = {
            epoch: list(seqs)
            for epoch, seqs in base["retrans_seqs"].items()
            if keep(epoch)
        }
        for epoch, seqs in patch["retrans_seqs"].items():
            retrans_seqs[epoch] = sorted(
                set(retrans_seqs.get(epoch, ())) | set(seqs)
            )
        merged: Dict[str, Any] = {
            "version": CHECKPOINT_VERSION,
            "kind": "sharded",
            "num_shards": patch["num_shards"],
            "retain_reports": patch["retain_reports"],
            "max_epoch_seen": patch["max_epoch_seen"],
            "last_finalized": patch["last_finalized"],
            "flow_shard": flow_shard,
            "pending": patch["pending"],
            "retrans_seqs": retrans_seqs,
            "shards": [
                _merge_service_payload(
                    base_shard, self.columns, delta_shard, delta.columns
                )
                for base_shard, delta_shard in zip(base["shards"], patch["shards"])
            ],
        }
        return Checkpoint(payload=merged)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def materialize(self) -> "Checkpoint":
        """A checkpoint whose payload is pure JSON primitives (no columns)."""
        if self.columns is None:
            return self
        payload = dict(self.payload)
        if self.kind == "sharded":
            payload["shards"] = [
                {
                    **shard,
                    "epochs": [
                        _materialize_entry(entry, self.columns)
                        for entry in shard["epochs"]
                    ],
                }
                for shard in payload["shards"]
            ]
        else:
            payload["epochs"] = [
                _materialize_entry(entry, self.columns)
                for entry in payload["epochs"]
            ]
        return Checkpoint(payload=payload)

    def to_json(self, indent: int | None = None) -> str:
        """The checkpoint as a JSON document (round-trips exactly)."""
        return json.dumps(
            self.materialize().payload, indent=indent, sort_keys=True
        )

    @classmethod
    def from_json(cls, text: str) -> "Checkpoint":
        """Parse a checkpoint from :meth:`to_json` output."""
        return cls(payload=json.loads(text)).validate()

    def to_bytes(self) -> bytes:
        """The checkpoint in the compact binary container format."""
        source = self.materialize().payload
        arrays: Dict[str, np.ndarray] = {}
        names = _Interner()
        links = _Interner()
        payload = dict(source)
        sections = []
        if self.kind == "sharded":
            payload["shards"] = [dict(shard) for shard in payload["shards"]]
            sections = [
                (f"s{i}", shard) for i, shard in enumerate(payload["shards"])
            ]
        else:
            sections = [("", payload)]
        for section_prefix, section in sections:
            entries = []
            for j, entry in enumerate(section["epochs"]):
                prefix = f"{section_prefix}e{j}"
                out = dict(entry)
                out["records"] = _encode_records(
                    entry["records"], prefix, arrays, names, links
                )
                arrays[f"{prefix}_rs"] = np.asarray(
                    entry["retransmission_seqs"], dtype=np.int64
                )
                out["retransmission_seqs"] = {"__columns__": prefix}
                entries.append(out)
            section["epochs"] = entries
        header = {
            "payload": payload,
            "tables": {"names": names.items, "links": links.items},
        }
        header_blob = zlib.compress(
            json.dumps(header, sort_keys=True).encode("utf-8")
        )
        body = io.BytesIO()
        np.savez_compressed(body, **arrays)
        return (
            _CONTAINER_HEADER.pack(
                CHECKPOINT_MAGIC, _CONTAINER_VERSION, len(header_blob)
            )
            + header_blob
            + body.getvalue()
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "Checkpoint":
        """Parse a checkpoint from :meth:`to_bytes` output."""
        if len(data) < _CONTAINER_HEADER.size or not data.startswith(
            CHECKPOINT_MAGIC
        ):
            raise ValueError("not a binary checkpoint (bad magic)")
        _, container_version, header_len = _CONTAINER_HEADER.unpack_from(data)
        if container_version != _CONTAINER_VERSION:
            raise ValueError(
                f"unsupported binary checkpoint container v{container_version}"
            )
        header_end = _CONTAINER_HEADER.size + header_len
        header = json.loads(zlib.decompress(data[_CONTAINER_HEADER.size : header_end]))
        with np.load(io.BytesIO(data[header_end:]), allow_pickle=False) as blob:
            arrays = {name: blob[name] for name in blob.files}
        columns = CheckpointColumns(
            arrays=arrays,
            names=header["tables"]["names"],
            links=[link_from_str(text) for text in header["tables"]["links"]],
        )
        return cls(payload=header["payload"], columns=columns).validate()

    def save(self, path: Union[str, Path], format: str = "binary") -> None:
        """Write the checkpoint to ``path`` atomically.

        ``format="binary"`` (default) writes the compact container;
        ``format="json"`` writes indented JSON.  Either way the bytes land in
        a temp file first and are moved into place with ``os.replace``, so a
        crash mid-write can never leave a truncated checkpoint behind — the
        previous file (if any) survives intact.
        """
        if format == "json":
            data = (self.to_json(indent=2) + "\n").encode("utf-8")
        elif format == "binary":
            data = self.to_bytes()
        else:
            raise ValueError(f"unknown checkpoint format {format!r}")
        target = Path(path)
        tmp = target.with_name(f".{target.name}.tmp.{os.getpid()}")
        try:
            tmp.write_bytes(data)
            os.replace(tmp, target)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Checkpoint":
        """Read a checkpoint previously written with :meth:`save` (any format)."""
        data = Path(path).read_bytes()
        if data.startswith(CHECKPOINT_MAGIC):
            return cls.from_bytes(data)
        return cls.from_json(data.decode("utf-8"))
