"""Host-sharded composition of :class:`~repro.api.service.Zero07Service`.

The 007 analysis is voting — and votes merge.  :class:`ShardedService`
partitions evidence across ``num_shards`` independent service instances by
the reporting host (a stable CRC32 of ``src_host``, so any process computes
the same placement), and materializes *fleet-wide* reports by merging the
shards' evidence back in global sequence order.  Because every path event
carries its per-epoch sequence number, the merged replay reconstructs exactly
the stream an unsharded service would have ingested, so a sharded deployment
agrees bit-for-bit with a single service — the property that makes scale-out
safe.

Per-shard reports remain available through :meth:`ShardedService.shard` for
operators who want the partition-local view.

Deliberate trade-off: merged reports *replay* the shards' evidence through a
fresh batch analysis rather than summing the per-shard tallies.  Summing
per-link float votes across shards would fold them in a different order than
the unsharded service and drift by ULPs — replaying in global sequence order
is what keeps the bit-for-bit agreement guarantee.  The per-shard incremental
tallies are not wasted work either: they serve the partition-local
``shard(i)`` reports, and in a real deployment each shard is a separate
process whose ingestion (tracing, tallying) is the load being partitioned.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.api.checkpoint import CHECKPOINT_VERSION, Checkpoint
from repro.api.events import (
    EpochTick,
    Evidence,
    PathEvidence,
    RetransmissionEvidence,
)
from repro.api.service import ReportSink, Zero07Service, iter_evidence_runs
from repro.core.analysis import AnalysisAgent, EngineKind, EpochReport
from repro.core.blame import BlameConfig
from repro.core.votes import VotePolicy
from repro.discovery.agent import DiscoveredPath


def shard_of_host(host: str, num_shards: int) -> int:
    """The stable shard index of ``host`` (CRC32, identical in any process)."""
    return zlib.crc32(host.encode("utf-8")) % num_shards


class ShardedService:
    """``num_shards`` services behind one ingest/report facade.

    Constructor parameters mirror :class:`Zero07Service`; sinks observe the
    *merged* (fleet-wide) finalized reports.
    """

    def __init__(
        self,
        num_shards: int = 2,
        blame_config: Optional[BlameConfig] = None,
        vote_policy: VotePolicy = "inverse_hops",
        engine: EngineKind = "arrays",
        attribute_noise_flows: bool = False,
        sinks: Sequence[ReportSink] = (),
        retain_reports: int = 8,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self._num_shards = num_shards
        self._retain_reports = retain_reports
        self._shards = [
            Zero07Service(
                blame_config=blame_config,
                vote_policy=vote_policy,
                engine=engine,
                attribute_noise_flows=attribute_noise_flows,
                retain_reports=retain_reports,
            )
            for _ in range(num_shards)
        ]
        #: merge-side analysis agent with its own persistent link index.
        self._agent = AnalysisAgent(
            blame_config=blame_config,
            vote_policy=vote_policy,
            attribute_noise_flows=attribute_noise_flows,
            engine=engine,
        )
        self._sinks: List[ReportSink] = list(sinks)
        #: epoch -> flow id -> owning shard (routes retransmission updates).
        self._flow_shard: Dict[int, Dict[int, int]] = {}
        #: host name -> shard memo (bounded by the fabric's host count); a
        #: dict hit on an interned string is ~4x cheaper than re-hashing CRC32.
        self._shard_by_host: Dict[str, int] = {}
        #: retransmission updates whose path evidence has not arrived yet.
        self._pending: Dict[int, Dict[int, int]] = {}
        #: epoch -> retransmission-update seqs already consumed at the facade
        #: (duplicate suppression must happen before the pending buffer).
        self._retrans_seqs: Dict[int, set] = {}
        self._final_reports: Dict[int, EpochReport] = {}
        self._last_finalized: Optional[int] = None
        self._max_epoch_seen: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        """Number of shard services behind the facade."""
        return self._num_shards

    def shard(self, index: int) -> Zero07Service:
        """The shard service at ``index`` (partition-local reports/stats)."""
        return self._shards[index]

    @property
    def current_epoch(self) -> Optional[int]:
        """The most advanced epoch seen across the fleet."""
        return self._max_epoch_seen

    @property
    def last_finalized_epoch(self) -> Optional[int]:
        """The highest epoch whose merged report was finalized."""
        return self._last_finalized

    def add_sink(self, sink: ReportSink) -> None:
        """Register a sink for future merged finalized reports."""
        self._sinks.append(sink)

    def _seen_epoch(self, epoch: int) -> None:
        if self._max_epoch_seen is None or epoch > self._max_epoch_seen:
            self._max_epoch_seen = epoch

    def _is_late(self, epoch: int) -> bool:
        return self._last_finalized is not None and epoch <= self._last_finalized

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def ingest(self, event: Evidence) -> None:
        """Route one evidence event to its shard (ticks finalize the fleet)."""
        if isinstance(event, PathEvidence):
            if self._is_late(event.epoch):
                return
            self._seen_epoch(event.epoch)
            shard = shard_of_host(event.path.src_host, self._num_shards)
            self._flow_shard.setdefault(event.epoch, {})[event.path.flow_id] = shard
            self._shards[shard].ingest(event)
            pending = self._pending.get(event.epoch, {}).pop(event.path.flow_id, 0)
            if pending:
                self._shards[shard].ingest(
                    RetransmissionEvidence(
                        epoch=event.epoch,
                        flow_id=event.path.flow_id,
                        retransmissions=pending,
                    )
                )
        elif isinstance(event, RetransmissionEvidence):
            if self._is_late(event.epoch):
                return
            self._seen_epoch(event.epoch)
            if event.seq is not None:
                seen = self._retrans_seqs.setdefault(event.epoch, set())
                if event.seq in seen:
                    return
                seen.add(event.seq)
            shard = self._flow_shard.get(event.epoch, {}).get(event.flow_id)
            if shard is None:
                epoch_pending = self._pending.setdefault(event.epoch, {})
                epoch_pending[event.flow_id] = (
                    epoch_pending.get(event.flow_id, 0) + event.retransmissions
                )
            else:
                self._shards[shard].ingest(event)
        elif isinstance(event, EpochTick):
            if self._is_late(event.epoch):
                return
            self._seen_epoch(event.epoch)
            self._finalize_through(event.epoch)
            for shard in self._shards:
                shard.ingest(event)
        else:
            raise TypeError(f"not an evidence event: {event!r}")

    def ingest_batch(self, events, owned: bool = False) -> None:
        """Ingest many evidence events in order.

        Homogeneous runs are routed in bulk: path runs are partitioned by
        shard in one pass and handed to each shard's own batched
        :meth:`Zero07Service.ingest_batch` (which takes its vectorized fast
        path, since per-shard sub-runs preserve increasing sequence order),
        and retransmission runs are deduplicated at the facade with one set
        operation before shard-side per-flow aggregation.  Batches violating
        the fast-path preconditions (duplicates, buffered pending updates,
        unknown flows) fall back to :meth:`ingest` per event — bit-identical
        either way.  ``owned=True`` propagates to the shards (skips their
        defensive path copies; fallbacks stay defensive).
        """
        if "ingest" in self.__dict__:
            # ``ingest`` was wrapped on the instance (an EvidenceRecorder
            # tap) — every event must flow through the wrapper.
            for event in events:
                self.ingest(event)
            return
        events = events if isinstance(events, list) else list(events)
        for kind, epoch, chunk in iter_evidence_runs(events):
            if kind == "run":
                self._ingest_evidence_run(epoch, chunk, owned)
            else:
                self.ingest(chunk[0])

    def _ingest_evidence_run(self, epoch: int, run, owned: bool) -> None:
        """Partition one epoch's evidence run across the shards in one pass.

        A validation pass proves the run is routable without facade
        buffering (every count update carries a fresh seq and its flow's
        path is already placed — by an earlier batch or earlier in this very
        run); only then does the routing pass mutate facade state, so the
        per-event fallback never sees a half-applied run.
        """
        if self._is_late(epoch):
            return
        per_event = self.ingest
        if self._pending.get(epoch) or len(run) < 8:
            for event in run:
                per_event(event)
            return
        flow_map_get = self._flow_shard.get(epoch, {}).get
        seen = self._retrans_seqs.get(epoch, set())
        num_shards = self._num_shards
        shard_cache = self._shard_by_host
        shard_cache_get = shard_cache.get
        # One local pass validates *and* partitions; facade state is only
        # committed after the whole run proves routable, so the per-event
        # fallback never sees a half-applied run.
        routable = True
        run_flows: Dict[int, int] = {}
        run_seqs: set = set()
        sub_runs: List[list] = [[] for _ in range(num_shards)]
        appends = [sub.append for sub in sub_runs]
        for event in run:
            if type(event) is PathEvidence:
                path = event.path
                host = path.src_host
                shard = shard_cache_get(host)
                if shard is None:
                    shard = shard_of_host(host, num_shards)
                    shard_cache[host] = shard
                run_flows[path.flow_id] = shard
            elif type(event) is RetransmissionEvidence:
                seq = event.seq
                if seq is None or seq in seen or seq in run_seqs:
                    routable = False
                    break
                shard = run_flows.get(event.flow_id)
                if shard is None:
                    shard = flow_map_get(event.flow_id)
                    if shard is None:
                        routable = False
                        break
                run_seqs.add(seq)
            else:
                # exotic kind (e.g. a subclass): per-event handles or rejects
                routable = False
                break
            appends[shard](event)
        if not routable:
            for event in run:
                per_event(event)
            return
        self._seen_epoch(epoch)
        if run_flows:
            self._flow_shard.setdefault(epoch, {}).update(run_flows)
        if run_seqs:
            self._retrans_seqs.setdefault(epoch, set()).update(run_seqs)
        for shard, sub in enumerate(sub_runs):
            if sub:
                self._shards[shard].ingest_batch(sub, owned=owned)

    # ------------------------------------------------------------------
    # merged materialization
    # ------------------------------------------------------------------
    def _merged_paths(self, epoch: int) -> List[DiscoveredPath]:
        merged: List[Tuple[int, DiscoveredPath]] = []
        for shard in self._shards:
            merged.extend(shard.evidence_for_epoch(epoch))
        merged.sort(key=lambda record: record[0])
        return [path for _, path in merged]

    def report(self, epoch: Optional[int] = None) -> EpochReport:
        """The merged fleet-wide report of ``epoch`` (mid-epoch queries work).

        Bit-identical to an unsharded :meth:`Zero07Service.report` over the
        same evidence stream: the merge replays all shards' evidence in the
        global sequence order the source emitted it in.
        """
        if epoch is None:
            epoch = self._max_epoch_seen if self._max_epoch_seen is not None else 0
            if (
                epoch not in self._final_reports
                and self._last_finalized is not None
                and epoch <= self._last_finalized
            ):
                # mirror Zero07Service: after a boundary restore, "right now"
                # is the next open epoch, not the unserialized closed one.
                epoch = self._last_finalized + 1
        if epoch in self._final_reports:
            return self._final_reports[epoch]
        if self._is_late(epoch):
            raise KeyError(
                f"epoch {epoch} is closed (last finalized epoch "
                f"{self._last_finalized}) and no retained report exists "
                f"(retain_reports={self._retain_reports})"
            )
        return self._agent.analyze_epoch(epoch, self._merged_paths(epoch))

    def _open_epochs(self) -> List[int]:
        epochs = set()
        for shard in self._shards:
            epochs.update(shard.open_epochs)
        return sorted(epochs)

    def _finalize_through(self, epoch: int) -> None:
        # mirror Zero07Service: every epoch up to the tick finalizes, gap
        # (evidence-less) epochs included, one merged report per epoch.
        open_epochs = [e for e in self._open_epochs() if e <= epoch]
        if self._last_finalized is not None:
            start = self._last_finalized + 1
        elif open_epochs:
            start = min(open_epochs)
        else:
            start = epoch
        for e in range(start, epoch + 1):
            report = self._agent.analyze_epoch(e, self._merged_paths(e))
            self._final_reports[e] = report
            while len(self._final_reports) > self._retain_reports:
                del self._final_reports[next(iter(self._final_reports))]
            if self._last_finalized is None or e > self._last_finalized:
                self._last_finalized = e
            for sink in self._sinks:
                sink.on_report(report)
            self._flow_shard.pop(e, None)
            self._pending.pop(e, None)
            self._retrans_seqs.pop(e, None)

    def advance_epoch(self, epoch: int) -> EpochReport:
        """Tick ``epoch`` closed fleet-wide and return the merged report."""
        self.ingest(EpochTick(epoch))
        return self.report(epoch)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self) -> Checkpoint:
        """Snapshot the whole fleet (every shard plus the routing state)."""
        payload: Dict[str, Any] = {
            "version": CHECKPOINT_VERSION,
            "kind": "sharded",
            "num_shards": self._num_shards,
            "retain_reports": self._retain_reports,
            "max_epoch_seen": self._max_epoch_seen,
            "last_finalized": self._last_finalized,
            "flow_shard": {
                str(epoch): {str(flow): shard for flow, shard in flows.items()}
                for epoch, flows in self._flow_shard.items()
            },
            "pending": {
                str(epoch): {str(flow): count for flow, count in flows.items()}
                for epoch, flows in self._pending.items()
            },
            "retrans_seqs": {
                str(epoch): sorted(seqs)
                for epoch, seqs in self._retrans_seqs.items()
            },
            "shards": [shard.checkpoint().payload for shard in self._shards],
        }
        return Checkpoint(payload=payload)

    @classmethod
    def restore(
        cls, checkpoint: Checkpoint, sinks: Sequence[ReportSink] = ()
    ) -> "ShardedService":
        """Rebuild a sharded fleet from a :class:`Checkpoint`."""
        payload = checkpoint.validate().payload
        if payload.get("kind") != "sharded":
            raise ValueError(f"not a sharded checkpoint: kind={payload.get('kind')!r}")
        shard_payloads = payload["shards"]
        first = shard_payloads[0]
        from repro.api.checkpoint import blame_from_dict

        fleet = cls(
            num_shards=int(payload["num_shards"]),
            blame_config=blame_from_dict(first["blame"]),
            vote_policy=first["vote_policy"],
            engine=first["engine"],
            attribute_noise_flows=bool(first["attribute_noise_flows"]),
            sinks=sinks,
            retain_reports=int(payload["retain_reports"]),
        )
        fleet._shards = [
            Zero07Service.restore(Checkpoint(payload=shard_payload))
            for shard_payload in shard_payloads
        ]
        fleet._flow_shard = {
            int(epoch): {int(flow): int(shard) for flow, shard in flows.items()}
            for epoch, flows in payload["flow_shard"].items()
        }
        fleet._pending = {
            int(epoch): {int(flow): int(count) for flow, count in flows.items()}
            for epoch, flows in payload["pending"].items()
        }
        fleet._retrans_seqs = {
            int(epoch): {int(seq) for seq in seqs}
            for epoch, seqs in payload.get("retrans_seqs", {}).items()
        }
        fleet._max_epoch_seen = (
            int(payload["max_epoch_seen"])
            if payload["max_epoch_seen"] is not None
            else None
        )
        fleet._last_finalized = (
            int(payload["last_finalized"])
            if payload["last_finalized"] is not None
            else None
        )
        return fleet
