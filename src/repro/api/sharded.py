"""Host-sharded composition of :class:`~repro.api.service.Zero07Service`.

The 007 analysis is voting — and votes merge.  :class:`ShardedService`
partitions evidence across ``num_shards`` independent service instances by
the reporting host (a stable CRC32 of ``src_host``, so any process computes
the same placement), and materializes *fleet-wide* reports by merging the
shards' evidence back in global sequence order.  Because every path event
carries its per-epoch sequence number, the merged view reconstructs exactly
the stream an unsharded service would have ingested, so a sharded deployment
agrees bit-for-bit with a single service — the property that makes scale-out
safe.

Where the shards *run* is pluggable (:mod:`repro.api.executor`):

* ``backend="inline"`` (default) — every shard in this process, the original
  serial behavior and the correctness oracle.  Merged reports **replay** the
  shards' evidence in global sequence order through a fresh analysis;
  summing per-shard float tallies would fold votes in a different order and
  drift by ULPs.
* ``backend="process"`` — shards hosted by worker processes behind the
  binary evidence transport of :mod:`repro.api.wire`.  Bulk ingest then
  costs the coordinator only routing + encoding (workers tally off the
  critical path at low priority), and merged reports come from the
  coordinator's own :class:`~repro.api.wire.EvidenceColumnStore`, which
  accumulated the same columns in global sequence order as a byproduct of
  encoding — finalize without a worker round-trip.  Deliveries the bulk path
  cannot prove clean (reordering, duplicates, pending buffers, per-event
  ingestion, restores) mark the epoch dirty and finalize falls back to
  gather-and-replay, identical to the inline path.

Per-shard reports remain available through :meth:`ShardedService.shard` on
the inline backend; under the process backend the shard services live in
workers and :meth:`shard` raises
:class:`~repro.api.executor.ShardExecutorError`.
"""

from __future__ import annotations

import operator
import zlib
from collections import OrderedDict
from itertools import compress
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    sharded_payload_delta,
)
from repro.api.events import (
    EpochTick,
    Evidence,
    PathEvidence,
    RetransmissionEvidence,
)
from repro.api.executor import (
    InlineExecutor,
    ProcessExecutor,
    ShardExecutor,
    ShardExecutorError,
)
from repro.api.service import (
    ReportSink,
    ReportUnavailableError,
    Zero07Service,
    iter_evidence_runs,
)
from repro.api.wire import EvidenceColumnStore
from repro.core.analysis import AnalysisAgent, EngineKind, EpochReport
from repro.core.arrays import ItemIndex, LinkIndex
from repro.core.blame import BlameConfig
from repro.core.votes import VotePolicy
from repro.discovery.agent import DiscoveredPath


def shard_of_host(host: str, num_shards: int) -> int:
    """The stable shard index of ``host`` (CRC32, identical in any process)."""
    return zlib.crc32(host.encode("utf-8")) % num_shards


#: evidence kind codes for the vectorized routing pass; anything mapping to
#: 2 (an exotic subclass) sends the run down the scanning path.
_KIND_CODE = {PathEvidence: 0, RetransmissionEvidence: 1}

#: below this run length the scanning path wins (fixed numpy overheads).
_FAST_RUN_MIN = 512

#: distinct-host cap for the vectorized router's interned table; fleets
#: churn hosts (VM turnover, renamed pods), so like ``_HostShardLru`` the
#: table must not grow without bound — past the cap it is rebuilt from
#: scratch (epoch-cache semantics; ids are only used within one call).
_HOST_INDEX_MAX = 131_072


class _HostShardLru:
    """A bounded host→shard memo (LRU) for the routing hot loop.

    A dict hit on an interned string is ~4x cheaper than re-hashing CRC32,
    but fleets churn hosts (VM turnover, renamed pods), so the memo must not
    grow without bound.  Plain insertion-ordered dict + ``move_to_end`` on
    hit gives true LRU semantics; misses just recompute the CRC.
    """

    __slots__ = ("_entries", "capacity")

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[str, int]" = OrderedDict()

    def lookup(self, host: str) -> Optional[int]:
        shard = self._entries.get(host)
        if shard is not None:
            self._entries.move_to_end(host)
        return shard

    def store(self, host: str, shard: int) -> None:
        entries = self._entries
        entries[host] = shard
        if len(entries) > self.capacity:
            entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, host: str) -> bool:
        return host in self._entries


class ShardedService:
    """``num_shards`` services behind one ingest/report facade.

    Constructor parameters mirror :class:`Zero07Service`; sinks observe the
    *merged* (fleet-wide) finalized reports.  ``backend`` selects where the
    shard services execute (``"inline"`` in-process, ``"process"`` on worker
    processes) and ``workers`` caps the process pool (default: one worker
    per shard).  The facade's routing state and its checkpoints are
    backend-agnostic: a checkpoint taken inline restores onto the process
    backend and vice versa, bit-identically.
    """

    def __init__(
        self,
        num_shards: int = 2,
        blame_config: Optional[BlameConfig] = None,
        vote_policy: VotePolicy = "inverse_hops",
        engine: EngineKind = "arrays",
        attribute_noise_flows: bool = False,
        sinks: Sequence[ReportSink] = (),
        retain_reports: int = 8,
        backend: str = "inline",
        workers: Optional[int] = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if backend not in ("inline", "process"):
            raise ValueError(f"unknown shard backend {backend!r}")
        self._num_shards = num_shards
        self._backend = backend
        self._retain_reports = retain_reports
        service_config = dict(
            blame_config=blame_config,
            vote_policy=vote_policy,
            engine=engine,
            attribute_noise_flows=attribute_noise_flows,
            retain_reports=retain_reports,
        )
        #: merge-side analysis agent with its own persistent link index.
        self._merge_index = LinkIndex() if engine == "arrays" else None
        self._agent = AnalysisAgent(
            blame_config=blame_config,
            vote_policy=vote_policy,
            attribute_noise_flows=attribute_noise_flows,
            engine=engine,
            link_index=self._merge_index,
        )
        #: merged-column finalize only exists where it is bit-provable: the
        #: arrays engine (the dict engine's merged fold must replay).  The
        #: process executor's store lane owns all writes to it; the facade
        #: only reads behind :meth:`ShardExecutor.drain_store`.
        self._store: Optional[EvidenceColumnStore] = (
            EvidenceColumnStore(self._merge_index, vote_policy)
            if backend == "process" and engine == "arrays"
            else None
        )
        self._executor: ShardExecutor
        if backend == "inline":
            self._executor = InlineExecutor(num_shards, service_config)
        else:
            self._executor = ProcessExecutor(
                num_shards,
                service_config,
                workers=workers,
                link_index=self._merge_index,
                store=self._store,
            )
        self._sinks: List[ReportSink] = list(sinks)
        #: epoch -> flow id -> owning shard (routes retransmission updates).
        self._flow_shard: Dict[int, Dict[int, int]] = {}
        #: bounded host name -> shard memo (fleets churn hosts).
        self._shard_by_host = _HostShardLru()
        #: retransmission updates whose path evidence has not arrived yet.
        self._pending: Dict[int, Dict[int, int]] = {}
        #: epoch -> retransmission-update seqs already consumed at the facade
        #: (duplicate suppression must happen before the pending buffer).
        self._retrans_seqs: Dict[int, set] = {}
        #: epoch -> highest evidence seq consumed so far.  The vectorized
        #: routing pass proves a whole run duplicate-free with one compare
        #: against this watermark instead of per-update set membership.
        self._max_seq: Dict[int, int] = {}
        #: interned host names plus their CRC shard table, so bulk routing is
        #: an id-memo gather instead of per-event hashing.
        self._host_index = ItemIndex()
        self._host_shards = np.zeros(0, dtype=np.int64)
        #: epochs with evidence routed to some shard and not yet finalized —
        #: tracked here so ticking never needs a worker round-trip.
        self._open: set = set()
        self._final_reports: Dict[int, EpochReport] = {}
        self._last_finalized: Optional[int] = None
        self._max_epoch_seen: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        """Number of shard services behind the facade."""
        return self._num_shards

    @property
    def backend(self) -> str:
        """Which executor backend runs the shards (``inline``/``process``)."""
        return self._backend

    @property
    def executor(self) -> ShardExecutor:
        """The shard executor (transport/teardown live here)."""
        return self._executor

    def shard(self, index: int) -> Zero07Service:
        """The shard service at ``index`` (partition-local reports/stats).

        Only the inline backend can hand out the live object; the process
        backend raises :class:`ShardExecutorError` (use merged reports,
        ``executor.stats()`` or checkpoints instead).
        """
        return self._executor.shard_service(index)

    @property
    def current_epoch(self) -> Optional[int]:
        """The most advanced epoch seen across the fleet."""
        return self._max_epoch_seen

    @property
    def last_finalized_epoch(self) -> Optional[int]:
        """The highest epoch whose merged report was finalized."""
        return self._last_finalized

    def add_sink(self, sink: ReportSink) -> None:
        """Register a sink for future merged finalized reports."""
        self._sinks.append(sink)

    def close(self) -> None:
        """Tear down the executor (worker processes, pipes).  Idempotent."""
        self._executor.close()

    def __enter__(self) -> "ShardedService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _seen_epoch(self, epoch: int) -> None:
        if self._max_epoch_seen is None or epoch > self._max_epoch_seen:
            self._max_epoch_seen = epoch

    def _is_late(self, epoch: int) -> bool:
        return self._last_finalized is not None and epoch <= self._last_finalized

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def ingest(self, event: Evidence) -> None:
        """Route one evidence event to its shard (ticks finalize the fleet)."""
        if isinstance(event, PathEvidence):
            if self._is_late(event.epoch):
                return
            self._seen_epoch(event.epoch)
            shard = shard_of_host(event.path.src_host, self._num_shards)
            self._flow_shard.setdefault(event.epoch, {})[event.path.flow_id] = shard
            self._open.add(event.epoch)
            if event.seq is not None and event.seq > self._max_seq.get(
                event.epoch, -1
            ):
                self._max_seq[event.epoch] = event.seq
            if self._store is not None:
                self._executor.mark_dirty(event.epoch)
            self._executor.submit_event(shard, event)
            pending = self._pending.get(event.epoch, {}).pop(event.path.flow_id, 0)
            if pending:
                self._executor.submit_event(
                    shard,
                    RetransmissionEvidence(
                        epoch=event.epoch,
                        flow_id=event.path.flow_id,
                        retransmissions=pending,
                    ),
                )
        elif isinstance(event, RetransmissionEvidence):
            if self._is_late(event.epoch):
                return
            self._seen_epoch(event.epoch)
            if event.seq is not None:
                seen = self._retrans_seqs.setdefault(event.epoch, set())
                if event.seq in seen:
                    return
                seen.add(event.seq)
                if event.seq > self._max_seq.get(event.epoch, -1):
                    self._max_seq[event.epoch] = event.seq
            shard = self._flow_shard.get(event.epoch, {}).get(event.flow_id)
            if shard is None:
                epoch_pending = self._pending.setdefault(event.epoch, {})
                epoch_pending[event.flow_id] = (
                    epoch_pending.get(event.flow_id, 0) + event.retransmissions
                )
            else:
                self._open.add(event.epoch)
                if self._store is not None:
                    self._executor.mark_dirty(event.epoch)
                self._executor.submit_event(shard, event)
        elif isinstance(event, EpochTick):
            if self._is_late(event.epoch):
                return
            self._seen_epoch(event.epoch)
            self._finalize_through(event.epoch)
            self._executor.tick(event.epoch)
        else:
            raise TypeError(f"not an evidence event: {event!r}")

    def ingest_batch(self, events, owned: bool = False) -> None:
        """Ingest many evidence events in order.

        Homogeneous runs are routed in bulk: path runs are partitioned by
        shard in one pass and handed to each shard's own batched
        :meth:`Zero07Service.ingest_batch` (which takes its vectorized fast
        path, since per-shard sub-runs preserve increasing sequence order),
        and retransmission runs are deduplicated at the facade with one set
        operation before shard-side per-flow aggregation.  Events violating
        the fast-path preconditions (duplicates, buffered pending updates,
        unknown flows) fall back to :meth:`ingest` individually — the
        surrounding bulk stretches stay on the fast path and results are
        bit-identical either way.  ``owned=True`` propagates to the shards
        (skips their defensive path copies; fallbacks stay defensive).
        """
        if "ingest" in self.__dict__:
            # ``ingest`` was wrapped on the instance (an EvidenceRecorder
            # tap) — every event must flow through the wrapper.
            for event in events:
                self.ingest(event)
            return
        events = events if isinstance(events, list) else list(events)
        for kind, epoch, chunk in iter_evidence_runs(events):
            if kind == "run":
                self._ingest_evidence_run(epoch, chunk, owned)
            else:
                self.ingest(chunk[0])

    def ingest_run(
        self,
        epoch: int,
        run: List[Evidence],
        owned: bool = False,
        seqs: Optional[np.ndarray] = None,
    ) -> None:
        """Hand one single-epoch evidence run straight to the routing core.

        The sharded twin of :meth:`Zero07Service.ingest_run` — the hand-off
        hook for transports that already segmented the stream into one
        epoch's tickless run.  ``seqs`` is accepted for signature parity but
        unused: the routing pass re-derives sequence numbers as part of its
        single validation scan.
        """
        if "ingest" in self.__dict__:
            for event in run:
                self.ingest(event)
            return
        self._ingest_evidence_run(epoch, run, owned)

    @property
    def last_finalized_epoch(self) -> Optional[int]:
        """The newest epoch closed by a tick (``None`` before the first)."""
        return self._last_finalized

    def _commit_stretch(
        self,
        epoch: int,
        stretch: List[Evidence],
        sub_runs: List[list],
        run_flows: Dict[int, int],
        run_seqs: set,
        owned: bool,
    ) -> None:
        """Commit one validated bulk stretch: facade state, store, shards."""
        self._seen_epoch(epoch)
        self._open.add(epoch)
        if run_flows:
            self._flow_shard.setdefault(epoch, {}).update(run_flows)
        if run_seqs:
            self._retrans_seqs.setdefault(epoch, set()).update(run_seqs)
        top = max(
            (event.seq for event in stretch if event.seq is not None),
            default=None,
        )
        if top is not None and top > self._max_seq.get(epoch, -1):
            self._max_seq[epoch] = top
        self._executor.submit_runs(epoch, stretch, sub_runs, owned)

    def _ingest_run_fast(self, epoch: int, run, owned: bool) -> bool:
        """Route one large clean run with numpy instead of a Python scan.

        Returns ``False`` (having changed nothing) unless the whole run is
        provably equivalent to the scanning path: every event carries a seq
        and the seqs strictly extend everything this epoch has consumed
        (``seqs[0] > _max_seq`` subsumes every per-update duplicate check),
        no facade-buffered pending counts exist for the epoch, and no
        update's routing is order-dependent.  The routing itself is one
        interned-host gather plus a CRC table lookup; only the (sparse)
        count updates pay a Python-level loop.
        """
        n = len(run)
        if n < _FAST_RUN_MIN or self._pending.get(epoch):
            return False
        try:
            seqs = np.fromiter(
                map(operator.attrgetter("seq"), run), dtype=np.int64, count=n
            )
        except TypeError:  # a seq-less event somewhere in the run
            return False
        if seqs[0] <= self._max_seq.get(epoch, -1):
            return False
        if not bool((seqs[1:] > seqs[:-1]).all()):
            return False
        code_of = _KIND_CODE.get
        kinds = np.fromiter(
            (code_of(type(e), 2) for e in run), dtype=np.int8, count=n
        )
        path_mask = kinds == 0
        n_paths = int(path_mask.sum())
        if n_paths == n:
            paths = run
        else:
            if int(kinds.max()) > 1:
                return False
            paths = list(compress(run, path_mask.tolist()))

        if len(self._host_index) > _HOST_INDEX_MAX:
            self._host_index = ItemIndex()
            self._host_shards = np.zeros(0, dtype=np.int64)
        host_ids = np.asarray(
            self._host_index.fast_ids([e.path.src_host for e in paths]),
            dtype=np.int64,
        )
        table = self._host_shards
        if len(table) < len(self._host_index):
            known = self._host_index.items
            fresh = np.fromiter(
                (zlib.crc32(host.encode("utf-8")) for host in known[len(table):]),
                dtype=np.int64,
                count=len(known) - len(table),
            )
            table = self._host_shards = np.concatenate(
                [table, fresh % self._num_shards]
            )
        path_shards = table[host_ids]
        flows = [e.path.flow_id for e in paths]
        run_map = dict(zip(flows, path_shards.tolist()))

        shard_ids = np.empty(n, dtype=np.int64)
        shard_ids[path_mask] = path_shards
        upd_seqs: list = []
        if n_paths != n:
            if len(run_map) != n_paths:
                # a re-traced flow makes in-run update routing order-dependent
                return False
            run_get = run_map.get
            epoch_get = self._flow_shard.get(epoch, {}).get
            for position in np.flatnonzero(~path_mask).tolist():
                flow = run[position].flow_id
                shard = run_get(flow)
                placed = epoch_get(flow)
                if shard is None:
                    if placed is None:
                        return False  # unknown flow buffers at the facade
                    shard = placed
                elif placed is not None and placed != shard:
                    # an update-before-re-trace could legally route either way
                    return False
                shard_ids[position] = shard
            upd_seqs = seqs[~path_mask].tolist()

        # -- provably routable: commit facade state and hand off --------
        self._seen_epoch(epoch)
        self._open.add(epoch)
        if run_map:
            self._flow_shard.setdefault(epoch, {}).update(run_map)
        if upd_seqs:
            self._retrans_seqs.setdefault(epoch, set()).update(upd_seqs)
        self._max_seq[epoch] = int(seqs[-1])
        self._executor.submit_vector_run(epoch, run, shard_ids, seqs, owned)
        return True

    def _ingest_evidence_run(self, epoch: int, run, owned: bool) -> None:
        """Partition one epoch's evidence run across the shards.

        A single pass validates *and* partitions.  Maximal stretches of
        events that are provably routable without facade buffering (every
        count update carries a fresh seq and its flow's path is already
        placed; no path's flow has buffered pending counts) are committed in
        bulk; the individual events that break a stretch — an update for an
        unknown flow, a duplicate, a path with pending counts waiting —
        go through the per-event path, and the scan resumes a new stretch
        right after.  Facade state for a stretch is only committed once the
        whole stretch proves routable, so the per-event path never sees a
        half-applied stretch.
        """
        if self._is_late(epoch):
            return
        if self._ingest_run_fast(epoch, run, owned):
            return
        per_event = self.ingest
        if len(run) < 8:
            for event in run:
                per_event(event)
            return
        flow_map_get = self._flow_shard.get(epoch, {}).get
        seen = self._retrans_seqs.get(epoch, set())
        num_shards = self._num_shards
        cache_lookup = self._shard_by_host.lookup
        cache_store = self._shard_by_host.store
        pending = self._pending.get(epoch)
        pending_contains = pending.__contains__ if pending else None

        start = 0  # first event of the open stretch
        run_flows: Dict[int, int] = {}
        run_seqs: set = set()
        sub_runs: List[list] = [[] for _ in range(num_shards)]
        appends = [sub.append for sub in sub_runs]

        def refresh() -> None:
            # per-event calls and stretch commits may create the epoch's
            # facade dicts/sets — re-resolve the captured fast handles so
            # later checks see what the per-event path recorded.
            nonlocal flow_map_get, seen, pending, pending_contains
            flow_map_get = self._flow_shard.get(epoch, {}).get
            seen = self._retrans_seqs.get(epoch, set())
            pending = self._pending.get(epoch)
            pending_contains = pending.__contains__ if pending else None

        def flush(stop: int) -> None:
            nonlocal start, run_flows, run_seqs, sub_runs, appends
            if stop > start:
                self._commit_stretch(
                    epoch, run[start:stop], sub_runs, run_flows, run_seqs, owned
                )
                run_flows = {}
                run_seqs = set()
                sub_runs = [[] for _ in range(num_shards)]
                appends = [sub.append for sub in sub_runs]
            refresh()

        def punt(position: int, event: Evidence) -> None:
            # this event breaks the open stretch: commit the stretch, run the
            # event through the per-event path, and resume scanning after it.
            nonlocal start
            flush(position)
            per_event(event)
            start = position + 1
            refresh()

        for position, event in enumerate(run):
            if type(event) is PathEvidence:
                flow_id = event.path.flow_id
                if pending_contains is not None and pending_contains(flow_id):
                    # buffered counts must be synthesized right after this
                    # path — per-event territory.
                    punt(position, event)
                    continue
                host = event.path.src_host
                shard = cache_lookup(host)
                if shard is None:
                    shard = shard_of_host(host, num_shards)
                    cache_store(host, shard)
                run_flows[flow_id] = shard
            elif type(event) is RetransmissionEvidence:
                seq = event.seq
                if seq is None or seq in seen or seq in run_seqs:
                    punt(position, event)
                    continue
                shard = run_flows.get(event.flow_id)
                if shard is None:
                    shard = flow_map_get(event.flow_id)
                    if shard is None:
                        # unknown flow: buffers at the facade — per-event.
                        punt(position, event)
                        continue
                run_seqs.add(seq)
            else:
                # exotic kind (e.g. a subclass): per-event handles/rejects it.
                punt(position, event)
                continue
            appends[shard](event)
        flush(len(run))

    # ------------------------------------------------------------------
    # merged materialization
    # ------------------------------------------------------------------
    def _merged_paths(self, epoch: int) -> List[DiscoveredPath]:
        merged: List[Tuple[int, DiscoveredPath]] = list(
            self._executor.evidence_for_epoch(epoch)
        )
        merged.sort(key=lambda record: record[0])
        return [path for _, path in merged]

    def _merged_report(self, epoch: int) -> EpochReport:
        """The fleet-wide report, from merged columns or gathered replay.

        Both paths fold the epoch's evidence in global sequence order, so
        they are bit-identical; the column store just skips the worker
        round-trip and the per-path replay when the epoch is provably clean.
        """
        if self._store is not None:
            self._executor.drain_store()
            if self._store.is_clean(epoch):
                tally = self._store.build_tally(epoch)
                if tally is not None:
                    return self._agent.analyze_tally(epoch, tally)
        return self._agent.analyze_epoch(epoch, self._merged_paths(epoch))

    def report(self, epoch: Optional[int] = None) -> EpochReport:
        """The merged fleet-wide report of ``epoch`` (mid-epoch queries work).

        Bit-identical to an unsharded :meth:`Zero07Service.report` over the
        same evidence stream: the merge folds all shards' evidence in the
        global sequence order the source emitted it in.
        """
        if epoch is None:
            epoch = self._max_epoch_seen if self._max_epoch_seen is not None else 0
            if (
                epoch not in self._final_reports
                and self._last_finalized is not None
                and epoch <= self._last_finalized
            ):
                # mirror Zero07Service: after a boundary restore, "right now"
                # is the next open epoch, not the unserialized closed one.
                epoch = self._last_finalized + 1
        if epoch in self._final_reports:
            return self._final_reports[epoch]
        if self._is_late(epoch):
            raise ReportUnavailableError(
                epoch, self._last_finalized, self._retain_reports
            )
        return self._merged_report(epoch)

    def _finalize_through(self, epoch: int) -> None:
        # mirror Zero07Service: every epoch up to the tick finalizes, gap
        # (evidence-less) epochs included, one merged report per epoch.
        open_epochs = [e for e in self._open if e <= epoch]
        if self._last_finalized is not None:
            start = self._last_finalized + 1
        elif open_epochs:
            start = min(open_epochs)
        else:
            start = epoch
        # hold back the executor's encode/send work while we finalize: the
        # merged reports come from the coordinator's own columns, and the
        # wire traffic (which the workers consume at their own pace) would
        # otherwise compete for the CPU inside this latency-sensitive window.
        self._executor.pause_wire()
        try:
            for e in range(start, epoch + 1):
                report = self._merged_report(e)
                self._final_reports[e] = report
                while len(self._final_reports) > self._retain_reports:
                    del self._final_reports[next(iter(self._final_reports))]
                if self._last_finalized is None or e > self._last_finalized:
                    self._last_finalized = e
                for sink in self._sinks:
                    sink.on_report(report)
                self._flow_shard.pop(e, None)
                self._pending.pop(e, None)
                self._retrans_seqs.pop(e, None)
                self._max_seq.pop(e, None)
                self._open.discard(e)
                if self._store is not None:
                    self._executor.forget_epoch(e)
        finally:
            self._executor.resume_wire()

    def advance_epoch(self, epoch: int) -> EpochReport:
        """Tick ``epoch`` closed fleet-wide and return the merged report."""
        self.ingest(EpochTick(epoch))
        return self.report(epoch)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self, base: Optional[Checkpoint] = None) -> Checkpoint:
        """Snapshot the whole fleet (every shard plus the routing state).

        The payload is backend-agnostic — the process executor gathers its
        workers' shard states into exactly the structure the inline backend
        writes, so checkpoints restore across backends.  With ``base`` — a
        *full* sharded checkpoint taken earlier from this same fleet — the
        result is a **delta** checkpoint carrying only the evidence and
        routing state that changed since the base; apply it with
        ``base.apply_delta(delta)`` before restoring.
        """
        payload: Dict[str, Any] = {
            "version": CHECKPOINT_VERSION,
            "kind": "sharded",
            "num_shards": self._num_shards,
            "retain_reports": self._retain_reports,
            "max_epoch_seen": self._max_epoch_seen,
            "last_finalized": self._last_finalized,
            "flow_shard": {
                str(epoch): {str(flow): shard for flow, shard in flows.items()}
                for epoch, flows in self._flow_shard.items()
            },
            "pending": {
                str(epoch): {str(flow): count for flow, count in flows.items()}
                for epoch, flows in self._pending.items()
            },
            "retrans_seqs": {
                str(epoch): sorted(seqs)
                for epoch, seqs in self._retrans_seqs.items()
            },
            "shards": self._executor.checkpoint_shards(),
        }
        if base is None:
            return Checkpoint(payload=payload)
        base.validate()
        if base.is_delta:
            raise ValueError(
                "the base of a delta checkpoint must be a full checkpoint"
            )
        if base.kind != "sharded":
            raise ValueError(
                f"base checkpoint kind {base.kind!r} does not match 'sharded'"
            )
        return Checkpoint(
            payload=sharded_payload_delta(payload, base.payload, base.columns)
        )

    @classmethod
    def restore(
        cls,
        checkpoint: Checkpoint,
        sinks: Sequence[ReportSink] = (),
        backend: str = "inline",
        workers: Optional[int] = None,
    ) -> "ShardedService":
        """Rebuild a sharded fleet from a :class:`Checkpoint`.

        ``backend``/``workers`` choose the execution strategy of the restored
        fleet independently of the one that took the checkpoint.  Works for
        both serializations (v1 JSON and v2 binary); delta checkpoints must
        be applied to their base first.
        """
        payload = checkpoint.validate().payload
        if checkpoint.is_delta:
            raise ValueError(
                "cannot restore a delta checkpoint directly; merge it onto "
                "its full base first with base.apply_delta(delta)"
            )
        if payload.get("kind") != "sharded":
            raise ValueError(f"not a sharded checkpoint: kind={payload.get('kind')!r}")
        shard_payloads = payload["shards"]
        first = shard_payloads[0]
        from repro.api.checkpoint import blame_from_dict

        fleet = cls(
            num_shards=int(payload["num_shards"]),
            blame_config=blame_from_dict(first["blame"]),
            vote_policy=first["vote_policy"],
            engine=first["engine"],
            attribute_noise_flows=bool(first["attribute_noise_flows"]),
            sinks=sinks,
            retain_reports=int(payload["retain_reports"]),
            backend=backend,
            workers=workers,
        )
        fleet._executor.restore_shards(shard_payloads, checkpoint.columns)
        fleet._flow_shard = {
            int(epoch): {int(flow): int(shard) for flow, shard in flows.items()}
            for epoch, flows in payload["flow_shard"].items()
        }
        fleet._pending = {
            int(epoch): {int(flow): int(count) for flow, count in flows.items()}
            for epoch, flows in payload["pending"].items()
        }
        fleet._retrans_seqs = {
            int(epoch): {int(seq) for seq in seqs}
            for epoch, seqs in payload.get("retrans_seqs", {}).items()
        }
        for shard_payload in shard_payloads:
            for epoch_data in shard_payload.get("epochs", []):
                fleet._open.add(int(epoch_data["epoch"]))
        if fleet._store is not None:
            # restored epochs were not streamed through the column store —
            # their merged reports come from gather-and-replay.
            for epoch in fleet._open:
                fleet._executor.mark_dirty(epoch)
        for epoch, seqs in fleet._retrans_seqs.items():
            # seed the seq watermark so the vectorized routing pass stays
            # duplicate-safe against pre-checkpoint update seqs.
            if seqs:
                fleet._max_seq[epoch] = max(seqs)
        fleet._max_epoch_seen = (
            int(payload["max_epoch_seen"])
            if payload["max_epoch_seen"] is not None
            else None
        )
        fleet._last_finalized = (
            int(payload["last_finalized"])
            if payload["last_finalized"] is not None
            else None
        )
        return fleet
