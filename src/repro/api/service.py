"""The event-driven 007 analysis service.

:class:`Zero07Service` is the always-on core the rest of the system is built
around: evidence events (:mod:`repro.api.events`) are *ingested* one at a
time or in batches, an **incremental vote tally** is maintained per open epoch
with O(changed-flows) work (each path costs one ``add_flow``, each repeat
retransmission an O(1) bump — on both the dict and the array engine), and an
:class:`~repro.core.analysis.EpochReport` can be *materialized on demand* at
any moment — including mid-epoch, before the epoch's tick arrives.  Reports
are bit-identical to the legacy batch loop: the service replays evidence in
sequence order, which is exactly the order the batch analysis consumed the
discovered paths in.

Three protocols define the system boundary:

* :class:`EvidenceSource` — anything that yields evidence events
  (the monitoring bridge, a replay log, a network receiver).
* ``Zero07Service`` — ``ingest`` / ``ingest_batch`` / ``report`` /
  ``checkpoint``.
* :class:`ReportSink` — observers notified with every finalized epoch report
  (aggregators, detection scorers, loggers, alerting).

Epoch lifecycle: evidence opens an epoch implicitly; an
:class:`~repro.api.events.EpochTick` finalizes every open epoch up to and
including the ticked one — the final report is materialized once, pushed to
every sink, cached (bounded by ``retain_reports``) and the epoch's evidence
buffers are released, so a long-running service holds O(open epochs) state,
not O(history).
"""

from __future__ import annotations

import dataclasses
import operator
from dataclasses import dataclass

import numpy as np
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.api.checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    blame_from_dict,
    blame_to_dict,
    epoch_records,
    epoch_retransmission_seqs,
    gc_paused,
    service_payload_delta,
)
from repro.api.events import (
    EpochTick,
    Evidence,
    PathEvidence,
    RetransmissionEvidence,
    copy_path,
    path_to_dict,
)
from repro.core.analysis import AnalysisAgent, EngineKind, EpochReport
from repro.core.arrays import ArrayVoteTally, LinkIndex
from repro.core.blame import BlameConfig
from repro.core.votes import VotePolicy, VoteTally
from repro.discovery.agent import DiscoveredPath


class ReportUnavailableError(KeyError):
    """``report(epoch)`` was asked for a finalized epoch outside retention.

    The epoch was already finalized (its sinks saw the report at tick time)
    and its cached report has since been evicted by the ``retain_reports``
    window — the service no longer holds the evidence to re-materialize it.
    The attributes name the epoch, the service's finalization progress and
    the retention window, so callers can size ``retain_reports`` or fall
    back to their report log.
    """

    def __init__(
        self, epoch: int, last_finalized: int, retain_reports: int
    ) -> None:
        super().__init__(
            f"epoch {epoch} is closed (last finalized epoch {last_finalized}) "
            f"and its report left the retention window "
            f"(retain_reports={retain_reports} keeps only the most recent "
            "finalized reports)"
        )
        self.epoch = epoch
        self.last_finalized = last_finalized
        self.retain_reports = retain_reports


# ----------------------------------------------------------------------
# protocols
# ----------------------------------------------------------------------
@runtime_checkable
class EvidenceSource(Protocol):
    """Anything that can yield a stream of evidence events."""

    def events(self) -> Iterable[Evidence]:
        """The evidence events, in emission order."""
        ...


@runtime_checkable
class ReportSink(Protocol):
    """Observer notified with every finalized epoch report."""

    def on_report(self, report: EpochReport) -> None:
        """Called exactly once per finalized epoch, in epoch order."""
        ...


class CallbackSink:
    """A :class:`ReportSink` wrapping a plain callable."""

    def __init__(self, callback: Callable[[EpochReport], None]) -> None:
        self._callback = callback

    def on_report(self, report: EpochReport) -> None:
        """Forward the report to the wrapped callable."""
        self._callback(report)


class DetectionLogSink:
    """Collects ``(epoch, detected_links)`` rows — a minimal alerting log."""

    def __init__(self) -> None:
        self.rows: List[Tuple[int, list]] = []

    def on_report(self, report: EpochReport) -> None:
        """Record the epoch's detections."""
        self.rows.append((report.epoch, list(report.detected_links)))

    @property
    def epochs_with_detections(self) -> int:
        """Number of finalized epochs that flagged at least one link."""
        return sum(1 for _, links in self.rows if links)


# ----------------------------------------------------------------------
# service state
# ----------------------------------------------------------------------
@dataclass
class ServiceStats:
    """Counters describing what the service ingested and produced."""

    paths_ingested: int = 0
    retransmission_updates: int = 0
    ticks: int = 0
    duplicate_events: int = 0
    out_of_order_events: int = 0
    late_events: int = 0
    reports_materialized: int = 0
    epochs_finalized: int = 0

    def reset(self) -> None:
        """Reset every counter to its field default."""
        for spec in dataclasses.fields(self):
            setattr(self, spec.name, spec.default)

    def as_dict(self) -> Dict[str, int]:
        """The counters as a plain dict (checkpoint payload)."""
        return dataclasses.asdict(self)


class _EpochState:
    """Evidence buffers and the live incremental tally of one open epoch."""

    __slots__ = (
        "rec_seqs",
        "rec_paths",
        "by_flow",
        "by_flow_upto",
        "seqs",
        "retransmission_seqs",
        "tally",
        "dirty",
        "last_seq",
        "max_seq",
        "pending_retransmissions",
        "mutations",
        "cached_report",
        "cached_at",
    )

    def __init__(self, tally) -> None:
        #: parallel per-record lists (seq, path); kept in seq order whenever
        #: ``not dirty``.  Parallel lists instead of tuples: the bulk ingest
        #: path appends hundreds of thousands of records per epoch, and the
        #: per-record tuple was measurable allocation churn.
        self.rec_seqs: List[int] = []
        self.rec_paths: List[DiscoveredPath] = []
        #: flow id -> the flow's most recently *arrived* path record (count
        #: updates bind to it).  Maintained lazily: ``by_flow_upto`` is the
        #: number of ``rec_paths`` entries already folded in, and
        #: :meth:`flow_path` folds the arrival-ordered tail on demand — so
        #: the bulk ingest path pays nothing for it, and a dirty rebuild
        #: (which re-sorts the records) can materialize the bindings *before*
        #: arrival order is destroyed.
        self.by_flow: Dict[int, DiscoveredPath] = {}
        self.by_flow_upto = 0
        #: seen sequence numbers (duplicate-delivery suppression).
        self.seqs: set = set()
        #: the subset of ``seqs`` consumed by retransmission updates (their
        #: effect lives in the paths' counts, so checkpoints persist the ids).
        self.retransmission_seqs: set = set()
        #: the live tally; valid whenever ``not dirty``.
        self.tally = tally
        #: set when out-of-order arrival invalidated the incremental tally.
        self.dirty = False
        self.last_seq = -1
        #: highest sequence number seen by *any* event kind (paths and
        #: retransmission updates share the space); the batched fast path
        #: uses it to prove a whole batch is duplicate-free in O(1).
        self.max_seq = -1
        #: retransmission updates that arrived before their flow's path.
        self.pending_retransmissions: Dict[int, int] = {}
        #: change watermark: bumped by every ingest that can alter a report
        #: (new paths, applied count updates, dirty rebuilds).  The epoch's
        #: materialized view — the last mid-epoch report — is cached together
        #: with the watermark it was computed at, so a query that lands with
        #: no rows touched since the previous query returns the cached report
        #: outright instead of re-running the analysis.
        self.mutations = 0
        self.cached_report: Optional[EpochReport] = None
        self.cached_at = -1

    def flow_path(self) -> Dict[int, DiscoveredPath]:
        """``by_flow``, folded forward over the records not yet reflected.

        Only ever called while ``rec_paths[by_flow_upto:]`` is still in
        arrival order (appends happen in arrival order; the dirty rebuild
        materializes the map *before* sorting), so the last fold for a flow
        is its most recently arrived record — per-event semantics.
        """
        if self.by_flow_upto < len(self.rec_paths):
            by_flow = self.by_flow
            for path in self.rec_paths[self.by_flow_upto :]:
                by_flow[path.flow_id] = path
            self.by_flow_upto = len(self.rec_paths)
        return self.by_flow


def iter_evidence_runs(events: List[Evidence]):
    """Segment an event list into maximal single-epoch evidence runs.

    Yields ``("run", epoch, run)`` for each maximal stretch of consecutive
    :class:`PathEvidence`/:class:`RetransmissionEvidence` events sharing one
    epoch, and ``("event", None, [event])`` for everything else (ticks,
    unknown kinds).  Shared by :meth:`Zero07Service.ingest_batch` and
    :meth:`~repro.api.sharded.ShardedService.ingest_batch`, so the two ingest
    facades can never diverge on what constitutes a batchable run.
    """
    total = len(events)
    start = 0
    while start < total:
        event = events[start]
        kind = type(event)
        if kind is PathEvidence or kind is RetransmissionEvidence:
            stop = start + 1
            epoch = event.epoch
            while stop < total:
                nxt = type(events[stop])
                if (
                    nxt is not PathEvidence
                    and nxt is not RetransmissionEvidence
                ) or events[stop].epoch != epoch:
                    break
                stop += 1
            yield "run", epoch, events[start:stop]
            start = stop
        else:
            yield "event", None, [event]
            start += 1


class Zero07Service:
    """The streaming 007 analysis service.

    Parameters
    ----------
    blame_config, vote_policy, engine, attribute_noise_flows:
        Analysis configuration, with the same semantics (and defaults) as
        :class:`~repro.core.analysis.AnalysisAgent`.
    sinks:
        :class:`ReportSink` observers notified with every finalized report.
    retain_reports:
        How many finalized :class:`EpochReport`s to keep addressable through
        :meth:`report`; older ones are evicted (their sinks already saw them).
    link_index:
        Optional pre-populated :class:`~repro.core.arrays.LinkIndex` shared
        with other components (arrays engine only).
    """

    def __init__(
        self,
        blame_config: Optional[BlameConfig] = None,
        vote_policy: VotePolicy = "inverse_hops",
        engine: EngineKind = "arrays",
        attribute_noise_flows: bool = False,
        sinks: Sequence[ReportSink] = (),
        retain_reports: int = 8,
        link_index: Optional[LinkIndex] = None,
    ) -> None:
        if retain_reports < 1:
            raise ValueError("retain_reports must be >= 1")
        self._blame_config = blame_config or BlameConfig()
        self._vote_policy: VotePolicy = vote_policy
        self._attribute_noise_flows = attribute_noise_flows
        self._retain_reports = retain_reports
        self._link_index = link_index if link_index is not None else LinkIndex()
        self._agent = AnalysisAgent(
            blame_config=self._blame_config,
            vote_policy=vote_policy,
            attribute_noise_flows=attribute_noise_flows,
            engine=engine,
            link_index=self._link_index,
        )
        self._sinks: List[ReportSink] = list(sinks)
        self._epochs: Dict[int, _EpochState] = {}
        #: finalized reports, insertion-ordered, bounded by retain_reports.
        self._final_reports: Dict[int, EpochReport] = {}
        self._last_finalized: Optional[int] = None
        self._max_epoch_seen: Optional[int] = None
        self.stats = ServiceStats()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def agent(self) -> AnalysisAgent:
        """The analysis agent reports are materialized with."""
        return self._agent

    @property
    def engine(self) -> EngineKind:
        """The analysis engine backing the incremental tallies."""
        return self._agent.engine

    @property
    def blame_config(self) -> BlameConfig:
        """The Algorithm 1 configuration."""
        return self._blame_config

    @property
    def link_index(self) -> LinkIndex:
        """The persistent link interner (arrays engine)."""
        return self._link_index

    @property
    def current_epoch(self) -> Optional[int]:
        """The most advanced epoch the service has seen evidence or ticks for."""
        return self._max_epoch_seen

    @property
    def last_finalized_epoch(self) -> Optional[int]:
        """The highest epoch whose report has been finalized (``None`` if none)."""
        return self._last_finalized

    @property
    def open_epochs(self) -> List[int]:
        """Epochs with buffered evidence that were not finalized yet."""
        return sorted(self._epochs)

    @property
    def sinks(self) -> List[ReportSink]:
        """The registered report sinks."""
        return list(self._sinks)

    def add_sink(self, sink: ReportSink) -> None:
        """Register a sink for future finalized reports."""
        self._sinks.append(sink)

    def remove_sink(self, sink: ReportSink) -> None:
        """Unregister a sink (no-op when it was never added)."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    def evidence_for_epoch(self, epoch: int) -> List[Tuple[int, DiscoveredPath]]:
        """The open epoch's ``(seq, path)`` records in sequence order.

        Returns an empty list for unknown/finalized epochs.  The paths are the
        service's own live copies — treat them as read-only.
        """
        state = self._epochs.get(epoch)
        if state is None:
            return []
        return sorted(zip(state.rec_seqs, state.rec_paths), key=lambda r: r[0])

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def ingest(self, event: Evidence) -> None:
        """Ingest one evidence event (path, retransmission update, or tick)."""
        if isinstance(event, PathEvidence):
            self._ingest_path(event)
        elif isinstance(event, RetransmissionEvidence):
            self._ingest_retransmission(event)
        elif isinstance(event, EpochTick):
            self._ingest_tick(event)
        else:
            raise TypeError(f"not an evidence event: {event!r}")

    def ingest_batch(self, events: Iterable[Evidence], owned: bool = False) -> None:
        """Ingest many evidence events in order.

        Homogeneous runs (consecutive events of one kind for one epoch, in
        strictly increasing sequence order — exactly what the monitoring
        bridge, the load generator and checkpoint replays emit) take a
        vectorized fast path: path runs update the tally with one bulk
        ``add_flows`` call instead of per-event dispatch, and retransmission
        runs are aggregated per flow with numpy so the tally is bumped once
        per *changed flow*, not once per event.  Any batch that violates the
        fast path's preconditions (duplicates, reordering, pending state)
        falls back to the event-at-a-time path — results are bit-identical
        either way, only the speed differs.

        ``owned=True`` declares that the caller hands over ownership of the
        events: the service skips its defensive per-event path copies.  Only
        pass it for streams whose paths nobody else will read or mutate
        (freshly generated or deserialized events).  The default remains
        copy-on-ingest, which is what live monitoring sources need — they
        mutate their ``DiscoveredPath`` objects in place on later
        retransmissions.
        """
        if "ingest" in self.__dict__:
            # ``ingest`` was wrapped on the instance (EvidenceRecorder taps
            # it to capture the stream) — every event must flow through the
            # wrapper, so the fast path would silently bypass the tap.
            for event in events:
                self.ingest(event)
            return
        events = events if isinstance(events, list) else list(events)
        total = len(events)
        if total >= 8:
            # Common shape: one epoch's evidence, optionally ending with its
            # tick.  Both checks run through C iterators — EpochTick has no
            # ``seq``, so a single attrgetter pass proves "evidence only".
            tail = 1 if type(events[-1]) is EpochTick else 0
            body = events[:-1] if tail else events
            try:
                seqs = np.fromiter(
                    map(operator.attrgetter("seq"), body),
                    dtype=np.int64,
                    count=len(body),
                )
                epochs = np.fromiter(
                    map(operator.attrgetter("epoch"), body),
                    dtype=np.int64,
                    count=len(body),
                )
            except (AttributeError, TypeError):
                pass  # ticks mid-batch or seq-less updates: segment below
            else:
                epoch = int(epochs[0])
                if int(epochs[-1]) == epoch and bool((epochs == epoch).all()):
                    self._ingest_evidence_run(epoch, body, owned, seqs)
                    if tail:
                        self.ingest(events[-1])
                    return
        for kind, epoch, chunk in iter_evidence_runs(events):
            if kind == "run":
                self._ingest_evidence_run(epoch, chunk, owned)
            else:
                self.ingest(chunk[0])

    def ingest_run(
        self,
        epoch: int,
        run: List[Evidence],
        owned: bool = False,
        seqs: Optional[np.ndarray] = None,
    ) -> None:
        """Hand one single-epoch evidence run straight to the batched core.

        The hand-off hook for transports that already segmented the stream
        (the process-backed shard executor decodes wire batches into exactly
        one epoch's run, sequence numbers included): skips the segmentation
        scan of :meth:`ingest_batch` and reuses the caller's ``seqs`` array.
        Semantics are identical to ``ingest_batch(run, owned=owned)`` for a
        run that contains no ticks and spans a single epoch.
        """
        if "ingest" in self.__dict__:
            for event in run:
                self.ingest(event)
            return
        self._ingest_evidence_run(epoch, run, owned, seqs)

    @property
    def last_finalized_epoch(self) -> Optional[int]:
        """The newest epoch closed by a tick (``None`` before the first).

        Transports use this to drop redelivered evidence for epochs whose
        final report already shipped instead of paying the late-event path
        per event.
        """
        return self._last_finalized

    def consume(self, source: EvidenceSource, owned: bool = False) -> None:
        """Drain an :class:`EvidenceSource` into the service.

        ``owned=True`` skips defensive path copies (see :meth:`ingest_batch`);
        only use it when the source will never replay the same events into
        another consumer.
        """
        self.ingest_batch(source.events(), owned=owned)

    def _seen_epoch(self, epoch: int) -> None:
        if self._max_epoch_seen is None or epoch > self._max_epoch_seen:
            self._max_epoch_seen = epoch

    def _is_late(self, epoch: int) -> bool:
        if self._last_finalized is not None and epoch <= self._last_finalized:
            self.stats.late_events += 1
            return True
        return False

    def _state(self, epoch: int) -> _EpochState:
        state = self._epochs.get(epoch)
        if state is None:
            state = _EpochState(self._new_tally())
            self._epochs[epoch] = state
        return state

    def _new_tally(self):
        if self.engine == "arrays":
            return ArrayVoteTally(policy=self._vote_policy, index=self._link_index)
        return VoteTally(policy=self._vote_policy)

    def _ingest_path(self, event: PathEvidence, owned: bool = False) -> None:
        if self._is_late(event.epoch):
            return
        self._seen_epoch(event.epoch)
        state = self._state(event.epoch)
        if event.seq in state.seqs:
            self.stats.duplicate_events += 1
            return
        state.seqs.add(event.seq)
        if event.seq > state.max_seq:
            state.max_seq = event.seq
        path = event.path if owned else copy_path(event.path)
        pending = state.pending_retransmissions.pop(path.flow_id, 0)
        if pending:
            path.retransmissions += pending
        state.rec_seqs.append(event.seq)
        state.rec_paths.append(path)
        if not state.dirty and event.seq > state.last_seq:
            state.tally.add_flow(path.flow_id, path.links, path.retransmissions)
            state.last_seq = event.seq
        else:
            # count only genuine reorderings; later in-order arrivals on an
            # already-dirty epoch still invalidate the tally but are not
            # themselves out of order.
            if event.seq < state.last_seq:
                self.stats.out_of_order_events += 1
            state.dirty = True
            state.last_seq = max(state.last_seq, event.seq)
        state.mutations += 1
        self.stats.paths_ingested += 1

    def _ingest_retransmission(self, event: RetransmissionEvidence) -> None:
        if self._is_late(event.epoch):
            return
        self._seen_epoch(event.epoch)
        state = self._state(event.epoch)
        if event.seq is not None:
            if event.seq in state.seqs:
                self.stats.duplicate_events += 1
                return
            state.seqs.add(event.seq)
            state.retransmission_seqs.add(event.seq)
            if event.seq > state.max_seq:
                state.max_seq = event.seq
        path = state.flow_path().get(event.flow_id)
        if path is None:
            # the flow's path evidence has not arrived (yet) — hold the count
            state.pending_retransmissions[event.flow_id] = (
                state.pending_retransmissions.get(event.flow_id, 0)
                + event.retransmissions
            )
        else:
            path.retransmissions += event.retransmissions
            if not state.dirty:
                state.tally.bump_retransmissions(event.flow_id, event.retransmissions)
            state.mutations += 1
        self.stats.retransmission_updates += 1

    # ------------------------------------------------------------------
    # batched fast path (bit-identical to the per-event path)
    # ------------------------------------------------------------------
    def _ingest_evidence_fallback(self, run: List[Evidence], owned: bool) -> None:
        """Event-at-a-time replay of a run (handles every edge case).

        Mirrors :meth:`ingest`'s dispatch exactly — subclasses are accepted
        via ``isinstance``, unknown kinds raise — so the fast path may hand
        *anything* here and get per-event semantics.
        """
        for event in run:
            if isinstance(event, PathEvidence):
                self._ingest_path(event, owned)
            elif isinstance(event, RetransmissionEvidence):
                self._ingest_retransmission(event)
            else:
                raise TypeError(f"not an evidence event: {event!r}")

    def _ingest_evidence_run(
        self,
        epoch: int,
        run: List[Evidence],
        owned: bool,
        seqs: Optional[np.ndarray] = None,
    ) -> None:
        """Bulk-ingest one epoch's run of path + retransmission evidence.

        The vectorized path applies all path evidence with one bulk
        ``add_flows`` tally update, then folds the run's retransmission
        updates aggregated per flow (``np.unique``/``np.bincount``) — one
        numpy-summed bump per *changed flow* instead of one Python dispatch
        per event.  Because count updates never move votes, applying them
        after the run's paths is state-identical to the interleaved per-event
        order (integer sums commute; the path objects and tally rows end in
        exactly the same state).
        """
        if self._last_finalized is not None and epoch <= self._last_finalized:
            self.stats.late_events += len(run)
            return
        if len(run) < 8:
            self._ingest_evidence_fallback(run, owned)
            return
        self._seen_epoch(epoch)
        state = self._state(epoch)
        # Fast-path preconditions: the run extends the epoch in strictly
        # increasing sequence order with no duplicates (every seq above
        # everything already seen), every update carries a seq, the
        # incremental tally is valid, and no buffered count updates await
        # these flows.  Anything else replays the per-event path.  The
        # validation pass below mutates nothing, so the fallback never sees
        # a half-applied run.
        if state.dirty or state.pending_retransmissions:
            self._ingest_evidence_fallback(run, owned)
            return
        if seqs is None:
            try:
                seqs = np.fromiter(
                    map(operator.attrgetter("seq"), run),
                    dtype=np.int64,
                    count=len(run),
                )
            except TypeError:  # a seq-less update in the run
                self._ingest_evidence_fallback(run, owned)
                return
        if int(seqs[0]) <= state.max_seq or not bool((np.diff(seqs) > 0).all()):
            self._ingest_evidence_fallback(run, owned)
            return

        raw_paths = [e.path for e in run if type(e) is PathEvidence]
        if len(raw_paths) == len(run):
            path_seqs = seqs.tolist()
            updates: List[RetransmissionEvidence] = []
        else:
            path_seqs = [e.seq for e in run if type(e) is PathEvidence]
            updates = [e for e in run if type(e) is RetransmissionEvidence]
            if len(raw_paths) + len(updates) != len(run):
                # an exotic event kind (e.g. a PathEvidence subclass) slipped
                # past the attribute gate; the per-event path knows how to
                # handle — or loudly reject — it.  Never swallow events.
                self._ingest_evidence_fallback(run, owned)
                return
            # Applying updates after the run's paths is only equivalent to
            # the interleaved per-event order if no update's flow is traced
            # *again* later in the run (the per-event path would bump the
            # earlier record, the batch path the final one).  Re-traced
            # flows mid-run are a degenerate stream — fall back.
            last_path_seq = dict(
                zip(map(operator.attrgetter("flow_id"), raw_paths), path_seqs)
            )
            seq_of_last_path = last_path_seq.get
            if any(
                seq_of_last_path(e.flow_id, -1) > e.seq for e in updates
            ):
                self._ingest_evidence_fallback(run, owned)
                return

        if raw_paths:
            paths = raw_paths if owned else [copy_path(p) for p in raw_paths]
            state.rec_seqs.extend(path_seqs)
            state.rec_paths.extend(paths)
            state.tally.add_flows(paths)
            state.last_seq = path_seqs[-1]
            state.mutations += 1
            self.stats.paths_ingested += len(paths)

        if updates:
            count = len(updates)
            flows = np.fromiter(
                map(operator.attrgetter("flow_id"), updates),
                dtype=np.int64,
                count=count,
            )
            counts = np.fromiter(
                map(operator.attrgetter("retransmissions"), updates),
                dtype=np.int64,
                count=count,
            )
            unique_flows, inverse = np.unique(flows, return_inverse=True)
            totals = np.bincount(inverse, weights=counts.astype(np.float64))
            # flow -> path resolution through the tally's row map: the tally
            # is clean here (precondition), so its rows align 1:1 with
            # ``rec_paths`` and the lazily-folded ``by_flow`` is not needed.
            flow_list = unique_flows.tolist()
            extras = totals.astype(np.int64).tolist()
            rows = list(map(state.tally.row_of_flow, flow_list))
            rec_paths = state.rec_paths
            if None in rows:  # some flows' paths have not arrived: buffer them
                pending = state.pending_retransmissions
                known_rows: List[int] = []
                known_extras: List[int] = []
                for flow_id, row, extra in zip(flow_list, rows, extras):
                    if row is None:
                        pending[flow_id] = pending.get(flow_id, 0) + extra
                    else:
                        known_rows.append(row)
                        known_extras.append(extra)
                rows, extras = known_rows, known_extras
            for row, extra in zip(rows, extras):
                rec_paths[row].retransmissions += extra
            state.tally.bump_rows(rows, extras)
            if rows:
                state.mutations += 1
            state.retransmission_seqs.update(
                map(operator.attrgetter("seq"), updates)
            )
            self.stats.retransmission_updates += count

        state.seqs.update(seqs.tolist())
        state.max_seq = int(seqs[-1])

    def _ingest_tick(self, event: EpochTick) -> None:
        if self._is_late(event.epoch):
            return
        self._seen_epoch(event.epoch)
        self.stats.ticks += 1
        # Finalize every epoch up to the tick — including evidence-less gap
        # epochs, which still get their (empty) reports exactly like the
        # batch loop emits one report per epoch.  The starting point is the
        # service's earliest known progress marker; epochs before the first
        # evidence/tick ever seen are outside the stream and stay unknown.
        open_epochs = [e for e in self._epochs if e <= event.epoch]
        if self._last_finalized is not None:
            start = self._last_finalized + 1
        elif open_epochs:
            start = min(open_epochs)
        else:
            start = event.epoch
        for epoch in range(start, event.epoch + 1):
            self._finalize(epoch)

    # ------------------------------------------------------------------
    # materialization
    # ------------------------------------------------------------------
    def _rebuild_if_dirty(self, state: _EpochState) -> None:
        if not state.dirty:
            return
        # Materialize the lazy by_flow NOW, while rec_paths is still in
        # arrival order: per-event semantics bind count updates to the most
        # recently *arrived* record of a flow, and the sort below destroys
        # that ordering for good (the watermark equals len(rec_paths) after
        # this, so no post-sort fold can rebind anything).
        state.flow_path()
        order = sorted(range(len(state.rec_seqs)), key=state.rec_seqs.__getitem__)
        state.rec_seqs = [state.rec_seqs[i] for i in order]
        state.rec_paths = [state.rec_paths[i] for i in order]
        tally = self._new_tally()
        for path in state.rec_paths:
            tally.add_flow(path.flow_id, path.links, path.retransmissions)
        state.tally = tally
        state.dirty = False
        state.last_seq = state.rec_seqs[-1] if state.rec_seqs else -1

    def _materialize(self, epoch: int, state: Optional[_EpochState], final: bool) -> EpochReport:
        if state is None:
            tally = self._new_tally()
            paths: List[DiscoveredPath] = []
        else:
            self._rebuild_if_dirty(state)
            # Mid-epoch reports snapshot the tally so later ingests cannot
            # mutate an already-returned report; the final report owns the
            # live tally (no copy) since the epoch's state is dropped.  A
            # snapshot shares the tally's append-only buffers instead of
            # deep-copying them, which is what keeps repeated mid-epoch
            # queries O(changed rows), not O(epoch).
            tally = state.tally if final else state.tally.snapshot()
            paths = list(state.rec_paths)
        self.stats.reports_materialized += 1
        return self._agent.analyze_tally(epoch, tally, paths)

    def report(self, epoch: Optional[int] = None) -> EpochReport:
        """Materialize the :class:`EpochReport` of ``epoch`` right now.

        ``epoch=None`` reports on the most advanced epoch seen so far.  For a
        finalized epoch the cached final report is returned; for an open (or
        empty) epoch a fresh report is materialized from the evidence ingested
        *so far* — the mid-epoch "which link is bad right now" query.  Open
        epochs keep their last mid-epoch report as a materialized view: a
        query that finds no rows touched since the previous query (tracked by
        a per-epoch change watermark) returns the cached report in O(1), so
        polling an idle epoch costs microseconds, not an analysis run.
        Raises :class:`ReportUnavailableError` (a ``KeyError``) for finalized
        epochs evicted from the retention window.
        """
        if epoch is None:
            epoch = self._max_epoch_seen if self._max_epoch_seen is not None else 0
            if (
                epoch not in self._final_reports
                and self._last_finalized is not None
                and epoch <= self._last_finalized
            ):
                # e.g. freshly restored from a checkpoint taken at an epoch
                # boundary: the closed epoch's report was not serialized, so
                # "right now" is the next (still-empty) open epoch.
                epoch = self._last_finalized + 1
        if epoch in self._final_reports:
            return self._final_reports[epoch]
        if self._last_finalized is not None and epoch <= self._last_finalized:
            raise ReportUnavailableError(
                epoch, self._last_finalized, self._retain_reports
            )
        state = self._epochs.get(epoch)
        if (
            state is not None
            and state.cached_report is not None
            and state.cached_at == state.mutations
        ):
            # the materialized view: no rows were touched since the previous
            # query, so the previous query's report *is* the current report.
            return state.cached_report
        report = self._materialize(epoch, state, final=False)
        if state is not None:
            state.cached_report = report
            state.cached_at = state.mutations
        return report

    def _finalize(self, epoch: int) -> EpochReport:
        state = self._epochs.pop(epoch, None)
        report = self._materialize(epoch, state, final=True)
        self._final_reports[epoch] = report
        while len(self._final_reports) > self._retain_reports:
            oldest = next(iter(self._final_reports))
            del self._final_reports[oldest]
        if self._last_finalized is None or epoch > self._last_finalized:
            self._last_finalized = epoch
        self.stats.epochs_finalized += 1
        for sink in self._sinks:
            sink.on_report(report)
        return report

    def advance_epoch(self, epoch: int) -> EpochReport:
        """Tick ``epoch`` closed and return its finalized report.

        Equivalent to ``ingest(EpochTick(epoch))`` followed by
        ``report(epoch)`` — the convenience used by the batch adapters.
        """
        self.ingest(EpochTick(epoch))
        return self.report(epoch)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self, base: Optional[Checkpoint] = None) -> Checkpoint:
        """Snapshot the resumable analysis state (see :class:`Checkpoint`).

        With ``base`` — a *full* service checkpoint taken earlier from this
        same stream — the result is a **delta** checkpoint carrying only the
        evidence that arrived since the base (new records, records whose
        retransmission counts changed, newly consumed update seqs) plus the
        current counters.  Apply it with ``base.apply_delta(delta)`` before
        restoring.  Without ``base`` the checkpoint is full and directly
        restorable.
        """
        epochs = []
        for epoch in sorted(self._epochs):
            state = self._epochs[epoch]
            records = sorted(
                zip(state.rec_seqs, state.rec_paths), key=lambda r: r[0]
            )
            epochs.append(
                {
                    "epoch": epoch,
                    "records": [[seq, path_to_dict(path)] for seq, path in records],
                    "pending_retransmissions": {
                        str(flow): count
                        for flow, count in sorted(state.pending_retransmissions.items())
                    },
                    # consumed update seqs: their effect is already inside the
                    # records' counts, but redeliveries after a restore must
                    # still be recognized as duplicates.
                    "retransmission_seqs": sorted(state.retransmission_seqs),
                }
            )
        payload: Dict[str, Any] = {
            "version": CHECKPOINT_VERSION,
            "kind": "service",
            "engine": self.engine,
            "vote_policy": self._vote_policy,
            "attribute_noise_flows": self._attribute_noise_flows,
            "blame": blame_to_dict(self._blame_config),
            "retain_reports": self._retain_reports,
            "max_epoch_seen": self._max_epoch_seen,
            "last_finalized": self._last_finalized,
            "stats": self.stats.as_dict(),
            "epochs": epochs,
        }
        if base is None:
            return Checkpoint(payload=payload)
        base.validate()
        if base.is_delta:
            raise ValueError(
                "the base of a delta checkpoint must be a full checkpoint"
            )
        if base.kind != "service":
            raise ValueError(
                f"base checkpoint kind {base.kind!r} does not match 'service'"
            )
        return Checkpoint(
            payload=service_payload_delta(payload, base.payload, base.columns)
        )

    def _seed_epoch(
        self,
        epoch: int,
        seqs: List[int],
        paths: List[DiscoveredPath],
        pending: Dict[int, int],
        retrans_seqs: List[int],
    ) -> None:
        """Seed one open epoch's state straight from checkpoint records.

        Checkpoints store an epoch's records already sorted by (unique)
        sequence number, so the incremental tally can be folded with one bulk
        ``add_flows`` pass — state-identical to replaying every record through
        :meth:`ingest` (same fold order, same floats), at a fraction of the
        cost.  The caller owns ``seqs``/``paths``: they are adopted, not
        copied, so pass freshly decoded objects.
        """
        self._seen_epoch(epoch)
        state = self._state(epoch)
        state.rec_seqs = seqs
        state.rec_paths = paths
        state.seqs = set(seqs)
        if seqs:
            state.tally.add_flows(paths)
            state.last_seq = seqs[-1]
            state.max_seq = seqs[-1]
        self.stats.paths_ingested += len(paths)
        for flow_id, extra in pending.items():
            # mirror _ingest_retransmission for a seq-less buffered update
            path = state.flow_path().get(flow_id)
            if path is None:
                state.pending_retransmissions[flow_id] = (
                    state.pending_retransmissions.get(flow_id, 0) + extra
                )
            else:
                path.retransmissions += extra
                state.tally.bump_retransmissions(flow_id, extra)
            self.stats.retransmission_updates += 1
        if retrans_seqs:
            state.retransmission_seqs.update(retrans_seqs)
            state.seqs.update(retrans_seqs)
            state.max_seq = max(state.max_seq, max(retrans_seqs))

    @classmethod
    def restore(
        cls,
        checkpoint: Checkpoint,
        sinks: Sequence[ReportSink] = (),
        link_index: Optional[LinkIndex] = None,
    ) -> "Zero07Service":
        """Rebuild a service from a :class:`Checkpoint`.

        The open epochs' evidence is re-folded in sequence order, so every
        subsequent :meth:`report` is bit-identical to what the checkpointed
        service would have produced.  Works for both serializations (v1 JSON
        and v2 binary); delta checkpoints must be applied to their base
        first.  Sinks are not serialized — pass the ones the resumed service
        should notify.
        """
        checkpoint.validate()
        if checkpoint.is_delta:
            raise ValueError(
                "cannot restore a delta checkpoint directly; merge it onto "
                "its full base first with base.apply_delta(delta)"
            )
        payload = checkpoint.payload
        if payload.get("kind") != "service":
            raise ValueError(f"not a service checkpoint: kind={payload.get('kind')!r}")
        service = cls(
            blame_config=blame_from_dict(payload["blame"]),
            vote_policy=payload["vote_policy"],
            engine=payload["engine"],
            attribute_noise_flows=bool(payload["attribute_noise_flows"]),
            sinks=sinks,
            retain_reports=int(payload["retain_reports"]),
            link_index=link_index,
        )
        with gc_paused():
            for epoch_data in payload["epochs"]:
                seqs, paths = epoch_records(epoch_data, checkpoint.columns)
                service._seed_epoch(
                    int(epoch_data["epoch"]),
                    seqs,
                    paths,
                    {
                        int(flow): int(count)
                        for flow, count in epoch_data[
                            "pending_retransmissions"
                        ].items()
                    },
                    epoch_retransmission_seqs(epoch_data, checkpoint.columns),
                )
        service._max_epoch_seen = (
            int(payload["max_epoch_seen"])
            if payload["max_epoch_seen"] is not None
            else None
        )
        service._last_finalized = (
            int(payload["last_finalized"])
            if payload["last_finalized"] is not None
            else None
        )
        stats = payload.get("stats", {})
        for name, value in stats.items():
            if hasattr(service.stats, name):
                setattr(service.stats, name, int(value))
        return service
