"""The event-driven 007 analysis service.

:class:`Zero07Service` is the always-on core the rest of the system is built
around: evidence events (:mod:`repro.api.events`) are *ingested* one at a
time or in batches, an **incremental vote tally** is maintained per open epoch
with O(changed-flows) work (each path costs one ``add_flow``, each repeat
retransmission an O(1) bump — on both the dict and the array engine), and an
:class:`~repro.core.analysis.EpochReport` can be *materialized on demand* at
any moment — including mid-epoch, before the epoch's tick arrives.  Reports
are bit-identical to the legacy batch loop: the service replays evidence in
sequence order, which is exactly the order the batch analysis consumed the
discovered paths in.

Three protocols define the system boundary:

* :class:`EvidenceSource` — anything that yields evidence events
  (the monitoring bridge, a replay log, a network receiver).
* ``Zero07Service`` — ``ingest`` / ``ingest_batch`` / ``report`` /
  ``checkpoint``.
* :class:`ReportSink` — observers notified with every finalized epoch report
  (aggregators, detection scorers, loggers, alerting).

Epoch lifecycle: evidence opens an epoch implicitly; an
:class:`~repro.api.events.EpochTick` finalizes every open epoch up to and
including the ticked one — the final report is materialized once, pushed to
every sink, cached (bounded by ``retain_reports``) and the epoch's evidence
buffers are released, so a long-running service holds O(open epochs) state,
not O(history).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.api.checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    blame_from_dict,
    blame_to_dict,
)
from repro.api.events import (
    EpochTick,
    Evidence,
    PathEvidence,
    RetransmissionEvidence,
    copy_path,
    path_from_dict,
    path_to_dict,
)
from repro.core.analysis import AnalysisAgent, EngineKind, EpochReport
from repro.core.arrays import ArrayVoteTally, LinkIndex
from repro.core.blame import BlameConfig
from repro.core.votes import VotePolicy, VoteTally
from repro.discovery.agent import DiscoveredPath


# ----------------------------------------------------------------------
# protocols
# ----------------------------------------------------------------------
@runtime_checkable
class EvidenceSource(Protocol):
    """Anything that can yield a stream of evidence events."""

    def events(self) -> Iterable[Evidence]:
        """The evidence events, in emission order."""
        ...


@runtime_checkable
class ReportSink(Protocol):
    """Observer notified with every finalized epoch report."""

    def on_report(self, report: EpochReport) -> None:
        """Called exactly once per finalized epoch, in epoch order."""
        ...


class CallbackSink:
    """A :class:`ReportSink` wrapping a plain callable."""

    def __init__(self, callback: Callable[[EpochReport], None]) -> None:
        self._callback = callback

    def on_report(self, report: EpochReport) -> None:
        """Forward the report to the wrapped callable."""
        self._callback(report)


class DetectionLogSink:
    """Collects ``(epoch, detected_links)`` rows — a minimal alerting log."""

    def __init__(self) -> None:
        self.rows: List[Tuple[int, list]] = []

    def on_report(self, report: EpochReport) -> None:
        """Record the epoch's detections."""
        self.rows.append((report.epoch, list(report.detected_links)))

    @property
    def epochs_with_detections(self) -> int:
        """Number of finalized epochs that flagged at least one link."""
        return sum(1 for _, links in self.rows if links)


# ----------------------------------------------------------------------
# service state
# ----------------------------------------------------------------------
@dataclass
class ServiceStats:
    """Counters describing what the service ingested and produced."""

    paths_ingested: int = 0
    retransmission_updates: int = 0
    ticks: int = 0
    duplicate_events: int = 0
    out_of_order_events: int = 0
    late_events: int = 0
    reports_materialized: int = 0
    epochs_finalized: int = 0

    def reset(self) -> None:
        """Reset every counter to its field default."""
        for spec in dataclasses.fields(self):
            setattr(self, spec.name, spec.default)

    def as_dict(self) -> Dict[str, int]:
        """The counters as a plain dict (checkpoint payload)."""
        return dataclasses.asdict(self)


class _EpochState:
    """Evidence buffers and the live incremental tally of one open epoch."""

    __slots__ = (
        "records",
        "by_flow",
        "seqs",
        "retransmission_seqs",
        "tally",
        "dirty",
        "last_seq",
        "pending_retransmissions",
    )

    def __init__(self, tally) -> None:
        #: ``(seq, path)`` records; kept in seq order whenever ``not dirty``.
        self.records: List[Tuple[int, DiscoveredPath]] = []
        #: flow id -> the service's own path copy (for O(1) retrans bumps).
        self.by_flow: Dict[int, DiscoveredPath] = {}
        #: seen sequence numbers (duplicate-delivery suppression).
        self.seqs: set = set()
        #: the subset of ``seqs`` consumed by retransmission updates (their
        #: effect lives in the paths' counts, so checkpoints persist the ids).
        self.retransmission_seqs: set = set()
        #: the live tally; valid whenever ``not dirty``.
        self.tally = tally
        #: set when out-of-order arrival invalidated the incremental tally.
        self.dirty = False
        self.last_seq = -1
        #: retransmission updates that arrived before their flow's path.
        self.pending_retransmissions: Dict[int, int] = {}


class Zero07Service:
    """The streaming 007 analysis service.

    Parameters
    ----------
    blame_config, vote_policy, engine, attribute_noise_flows:
        Analysis configuration, with the same semantics (and defaults) as
        :class:`~repro.core.analysis.AnalysisAgent`.
    sinks:
        :class:`ReportSink` observers notified with every finalized report.
    retain_reports:
        How many finalized :class:`EpochReport`s to keep addressable through
        :meth:`report`; older ones are evicted (their sinks already saw them).
    link_index:
        Optional pre-populated :class:`~repro.core.arrays.LinkIndex` shared
        with other components (arrays engine only).
    """

    def __init__(
        self,
        blame_config: Optional[BlameConfig] = None,
        vote_policy: VotePolicy = "inverse_hops",
        engine: EngineKind = "arrays",
        attribute_noise_flows: bool = False,
        sinks: Sequence[ReportSink] = (),
        retain_reports: int = 8,
        link_index: Optional[LinkIndex] = None,
    ) -> None:
        if retain_reports < 1:
            raise ValueError("retain_reports must be >= 1")
        self._blame_config = blame_config or BlameConfig()
        self._vote_policy: VotePolicy = vote_policy
        self._attribute_noise_flows = attribute_noise_flows
        self._retain_reports = retain_reports
        self._link_index = link_index if link_index is not None else LinkIndex()
        self._agent = AnalysisAgent(
            blame_config=self._blame_config,
            vote_policy=vote_policy,
            attribute_noise_flows=attribute_noise_flows,
            engine=engine,
            link_index=self._link_index,
        )
        self._sinks: List[ReportSink] = list(sinks)
        self._epochs: Dict[int, _EpochState] = {}
        #: finalized reports, insertion-ordered, bounded by retain_reports.
        self._final_reports: Dict[int, EpochReport] = {}
        self._last_finalized: Optional[int] = None
        self._max_epoch_seen: Optional[int] = None
        self.stats = ServiceStats()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def agent(self) -> AnalysisAgent:
        """The analysis agent reports are materialized with."""
        return self._agent

    @property
    def engine(self) -> EngineKind:
        """The analysis engine backing the incremental tallies."""
        return self._agent.engine

    @property
    def blame_config(self) -> BlameConfig:
        """The Algorithm 1 configuration."""
        return self._blame_config

    @property
    def link_index(self) -> LinkIndex:
        """The persistent link interner (arrays engine)."""
        return self._link_index

    @property
    def current_epoch(self) -> Optional[int]:
        """The most advanced epoch the service has seen evidence or ticks for."""
        return self._max_epoch_seen

    @property
    def last_finalized_epoch(self) -> Optional[int]:
        """The highest epoch whose report has been finalized (``None`` if none)."""
        return self._last_finalized

    @property
    def open_epochs(self) -> List[int]:
        """Epochs with buffered evidence that were not finalized yet."""
        return sorted(self._epochs)

    @property
    def sinks(self) -> List[ReportSink]:
        """The registered report sinks."""
        return list(self._sinks)

    def add_sink(self, sink: ReportSink) -> None:
        """Register a sink for future finalized reports."""
        self._sinks.append(sink)

    def remove_sink(self, sink: ReportSink) -> None:
        """Unregister a sink (no-op when it was never added)."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    def evidence_for_epoch(self, epoch: int) -> List[Tuple[int, DiscoveredPath]]:
        """The open epoch's ``(seq, path)`` records in sequence order.

        Returns an empty list for unknown/finalized epochs.  The paths are the
        service's own live copies — treat them as read-only.
        """
        state = self._epochs.get(epoch)
        if state is None:
            return []
        return sorted(state.records, key=lambda record: record[0])

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def ingest(self, event: Evidence) -> None:
        """Ingest one evidence event (path, retransmission update, or tick)."""
        if isinstance(event, PathEvidence):
            self._ingest_path(event)
        elif isinstance(event, RetransmissionEvidence):
            self._ingest_retransmission(event)
        elif isinstance(event, EpochTick):
            self._ingest_tick(event)
        else:
            raise TypeError(f"not an evidence event: {event!r}")

    def ingest_batch(self, events: Iterable[Evidence]) -> None:
        """Ingest many evidence events in order."""
        for event in events:
            self.ingest(event)

    def consume(self, source: EvidenceSource) -> None:
        """Drain an :class:`EvidenceSource` into the service."""
        self.ingest_batch(source.events())

    def _seen_epoch(self, epoch: int) -> None:
        if self._max_epoch_seen is None or epoch > self._max_epoch_seen:
            self._max_epoch_seen = epoch

    def _is_late(self, epoch: int) -> bool:
        if self._last_finalized is not None and epoch <= self._last_finalized:
            self.stats.late_events += 1
            return True
        return False

    def _state(self, epoch: int) -> _EpochState:
        state = self._epochs.get(epoch)
        if state is None:
            state = _EpochState(self._new_tally())
            self._epochs[epoch] = state
        return state

    def _new_tally(self):
        if self.engine == "arrays":
            return ArrayVoteTally(policy=self._vote_policy, index=self._link_index)
        return VoteTally(policy=self._vote_policy)

    def _ingest_path(self, event: PathEvidence) -> None:
        if self._is_late(event.epoch):
            return
        self._seen_epoch(event.epoch)
        state = self._state(event.epoch)
        if event.seq in state.seqs:
            self.stats.duplicate_events += 1
            return
        state.seqs.add(event.seq)
        path = copy_path(event.path)
        pending = state.pending_retransmissions.pop(path.flow_id, 0)
        if pending:
            path.retransmissions += pending
        state.records.append((event.seq, path))
        state.by_flow[path.flow_id] = path
        if not state.dirty and event.seq > state.last_seq:
            state.tally.add_flow(path.flow_id, path.links, path.retransmissions)
            state.last_seq = event.seq
        else:
            # count only genuine reorderings; later in-order arrivals on an
            # already-dirty epoch still invalidate the tally but are not
            # themselves out of order.
            if event.seq < state.last_seq:
                self.stats.out_of_order_events += 1
            state.dirty = True
            state.last_seq = max(state.last_seq, event.seq)
        self.stats.paths_ingested += 1

    def _ingest_retransmission(self, event: RetransmissionEvidence) -> None:
        if self._is_late(event.epoch):
            return
        self._seen_epoch(event.epoch)
        state = self._state(event.epoch)
        if event.seq is not None:
            if event.seq in state.seqs:
                self.stats.duplicate_events += 1
                return
            state.seqs.add(event.seq)
            state.retransmission_seqs.add(event.seq)
        path = state.by_flow.get(event.flow_id)
        if path is None:
            # the flow's path evidence has not arrived (yet) — hold the count
            state.pending_retransmissions[event.flow_id] = (
                state.pending_retransmissions.get(event.flow_id, 0)
                + event.retransmissions
            )
        else:
            path.retransmissions += event.retransmissions
            if not state.dirty:
                state.tally.bump_retransmissions(event.flow_id, event.retransmissions)
        self.stats.retransmission_updates += 1

    def _ingest_tick(self, event: EpochTick) -> None:
        if self._is_late(event.epoch):
            return
        self._seen_epoch(event.epoch)
        self.stats.ticks += 1
        # Finalize every epoch up to the tick — including evidence-less gap
        # epochs, which still get their (empty) reports exactly like the
        # batch loop emits one report per epoch.  The starting point is the
        # service's earliest known progress marker; epochs before the first
        # evidence/tick ever seen are outside the stream and stay unknown.
        open_epochs = [e for e in self._epochs if e <= event.epoch]
        if self._last_finalized is not None:
            start = self._last_finalized + 1
        elif open_epochs:
            start = min(open_epochs)
        else:
            start = event.epoch
        for epoch in range(start, event.epoch + 1):
            self._finalize(epoch)

    # ------------------------------------------------------------------
    # materialization
    # ------------------------------------------------------------------
    def _rebuild_if_dirty(self, state: _EpochState) -> None:
        if not state.dirty:
            return
        state.records.sort(key=lambda record: record[0])
        tally = self._new_tally()
        for seq, path in state.records:
            tally.add_flow(path.flow_id, path.links, path.retransmissions)
        state.tally = tally
        state.dirty = False
        state.last_seq = state.records[-1][0] if state.records else -1

    def _materialize(self, epoch: int, state: Optional[_EpochState], final: bool) -> EpochReport:
        if state is None:
            tally = self._new_tally()
            paths: List[DiscoveredPath] = []
        else:
            self._rebuild_if_dirty(state)
            # Mid-epoch reports snapshot the tally so later ingests cannot
            # mutate an already-returned report; the final report owns the
            # live tally (no copy) since the epoch's state is dropped.
            tally = state.tally if final else state.tally.copy()
            paths = [path for _, path in state.records]
        self.stats.reports_materialized += 1
        return self._agent.analyze_tally(epoch, tally, paths)

    def report(self, epoch: Optional[int] = None) -> EpochReport:
        """Materialize the :class:`EpochReport` of ``epoch`` right now.

        ``epoch=None`` reports on the most advanced epoch seen so far.  For a
        finalized epoch the cached final report is returned; for an open (or
        empty) epoch a fresh report is materialized from the evidence ingested
        *so far* — the mid-epoch "which link is bad right now" query.  Raises
        ``KeyError`` for finalized epochs evicted from the retention window.
        """
        if epoch is None:
            epoch = self._max_epoch_seen if self._max_epoch_seen is not None else 0
            if (
                epoch not in self._final_reports
                and self._last_finalized is not None
                and epoch <= self._last_finalized
            ):
                # e.g. freshly restored from a checkpoint taken at an epoch
                # boundary: the closed epoch's report was not serialized, so
                # "right now" is the next (still-empty) open epoch.
                epoch = self._last_finalized + 1
        if epoch in self._final_reports:
            return self._final_reports[epoch]
        if self._last_finalized is not None and epoch <= self._last_finalized:
            raise KeyError(
                f"epoch {epoch} is closed (last finalized epoch "
                f"{self._last_finalized}) and no retained report exists "
                f"(retain_reports={self._retain_reports})"
            )
        return self._materialize(epoch, self._epochs.get(epoch), final=False)

    def _finalize(self, epoch: int) -> EpochReport:
        state = self._epochs.pop(epoch, None)
        report = self._materialize(epoch, state, final=True)
        self._final_reports[epoch] = report
        while len(self._final_reports) > self._retain_reports:
            oldest = next(iter(self._final_reports))
            del self._final_reports[oldest]
        if self._last_finalized is None or epoch > self._last_finalized:
            self._last_finalized = epoch
        self.stats.epochs_finalized += 1
        for sink in self._sinks:
            sink.on_report(report)
        return report

    def advance_epoch(self, epoch: int) -> EpochReport:
        """Tick ``epoch`` closed and return its finalized report.

        Equivalent to ``ingest(EpochTick(epoch))`` followed by
        ``report(epoch)`` — the convenience used by the batch adapters.
        """
        self.ingest(EpochTick(epoch))
        return self.report(epoch)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self) -> Checkpoint:
        """Snapshot the resumable analysis state (see :class:`Checkpoint`)."""
        epochs = []
        for epoch in sorted(self._epochs):
            state = self._epochs[epoch]
            records = sorted(state.records, key=lambda record: record[0])
            epochs.append(
                {
                    "epoch": epoch,
                    "records": [[seq, path_to_dict(path)] for seq, path in records],
                    "pending_retransmissions": {
                        str(flow): count
                        for flow, count in sorted(state.pending_retransmissions.items())
                    },
                    # consumed update seqs: their effect is already inside the
                    # records' counts, but redeliveries after a restore must
                    # still be recognized as duplicates.
                    "retransmission_seqs": sorted(state.retransmission_seqs),
                }
            )
        payload: Dict[str, Any] = {
            "version": CHECKPOINT_VERSION,
            "kind": "service",
            "engine": self.engine,
            "vote_policy": self._vote_policy,
            "attribute_noise_flows": self._attribute_noise_flows,
            "blame": blame_to_dict(self._blame_config),
            "retain_reports": self._retain_reports,
            "max_epoch_seen": self._max_epoch_seen,
            "last_finalized": self._last_finalized,
            "stats": self.stats.as_dict(),
            "epochs": epochs,
        }
        return Checkpoint(payload=payload)

    @classmethod
    def restore(
        cls,
        checkpoint: Checkpoint,
        sinks: Sequence[ReportSink] = (),
        link_index: Optional[LinkIndex] = None,
    ) -> "Zero07Service":
        """Rebuild a service from a :class:`Checkpoint`.

        The open epochs' evidence is replayed in sequence order, so every
        subsequent :meth:`report` is bit-identical to what the checkpointed
        service would have produced.  Sinks are not serialized — pass the ones
        the resumed service should notify.
        """
        payload = checkpoint.validate().payload
        if payload.get("kind") != "service":
            raise ValueError(f"not a service checkpoint: kind={payload.get('kind')!r}")
        service = cls(
            blame_config=blame_from_dict(payload["blame"]),
            vote_policy=payload["vote_policy"],
            engine=payload["engine"],
            attribute_noise_flows=bool(payload["attribute_noise_flows"]),
            sinks=sinks,
            retain_reports=int(payload["retain_reports"]),
            link_index=link_index,
        )
        for epoch_data in payload["epochs"]:
            epoch = int(epoch_data["epoch"])
            for seq, path_data in epoch_data["records"]:
                service.ingest(
                    PathEvidence(
                        epoch=epoch, seq=int(seq), path=path_from_dict(path_data)
                    )
                )
            for flow, count in epoch_data["pending_retransmissions"].items():
                service.ingest(
                    RetransmissionEvidence(
                        epoch=epoch, flow_id=int(flow), retransmissions=int(count)
                    )
                )
            retrans_seqs = epoch_data.get("retransmission_seqs", [])
            if retrans_seqs:
                state = service._state(epoch)
                state.retransmission_seqs.update(int(s) for s in retrans_seqs)
                state.seqs.update(int(s) for s in retrans_seqs)
        service._max_epoch_seen = (
            int(payload["max_epoch_seen"])
            if payload["max_epoch_seen"] is not None
            else None
        )
        service._last_finalized = (
            int(payload["last_finalized"])
            if payload["last_finalized"] is not None
            else None
        )
        stats = payload.get("stats", {})
        for name, value in stats.items():
            if hasattr(service.stats, name):
                setattr(service.stats, name, int(value))
        return service
