"""The TCP monitoring agent.

It watches the (ETW-like) event stream for retransmissions, immediately
triggers the path discovery agent, and hands the resulting
``(flow, discovered path)`` pairs to the analysis agent at the end of each
epoch.  Connection-setup failures are observed but never traced
(Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.discovery.agent import DiscoveredPath, PathDiscoveryAgent
from repro.netsim.events import ConnectionSetupFailureEvent, RetransmissionEvent


@dataclass
class MonitoringStats:
    """Counters of what the monitoring agent observed."""

    retransmission_events: int = 0
    setup_failure_events: int = 0
    paths_discovered: int = 0


class TcpMonitoringAgent:
    """Bridges retransmission events to path discovery and collects the results."""

    def __init__(self, path_discovery: PathDiscoveryAgent) -> None:
        self._path_discovery = path_discovery
        self._discovered: Dict[int, List[DiscoveredPath]] = {}
        self.stats = MonitoringStats()

    # ------------------------------------------------------------------
    def handle_event(self, event: object) -> None:
        """Event-bus callback: dispatch on the event type."""
        if isinstance(event, RetransmissionEvent):
            self._on_retransmission(event)
        elif isinstance(event, ConnectionSetupFailureEvent):
            self.stats.setup_failure_events += 1

    def _on_retransmission(self, event: RetransmissionEvent) -> None:
        self.stats.retransmission_events += 1
        discovered = self._path_discovery.discover(event)
        if discovered is None:
            return
        self.stats.paths_discovered += 1
        epoch_paths = self._discovered.setdefault(event.epoch, [])
        if discovered not in epoch_paths:
            epoch_paths.append(discovered)

    # ------------------------------------------------------------------
    def paths_for_epoch(self, epoch: int) -> List[DiscoveredPath]:
        """The unique discovered paths of flows that had retransmissions in ``epoch``."""
        return list(self._discovered.get(epoch, []))

    def clear_epoch(self, epoch: int) -> None:
        """Drop the stored paths of ``epoch`` (after the analysis agent consumed them)."""
        self._discovered.pop(epoch, None)
