"""The TCP monitoring agent.

It watches the (ETW-like) event stream for retransmissions, immediately
triggers the path discovery agent, and hands the resulting
``(flow, discovered path)`` pairs to the analysis agent at the end of each
epoch.  Connection-setup failures are observed but never traced
(Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Callable, Dict, List, Optional

from repro.discovery.agent import DiscoveredPath, PathDiscoveryAgent
from repro.netsim.events import ConnectionSetupFailureEvent, RetransmissionEvent


@dataclass
class MonitoringStats:
    """Counters of what the monitoring agent observed."""

    retransmission_events: int = 0
    setup_failure_events: int = 0
    paths_discovered: int = 0

    def reset(self) -> None:
        """Reset every counter to its field default (epoch rollover)."""
        for spec in fields(self):
            setattr(self, spec.name, spec.default)


class TcpMonitoringAgent:
    """Bridges retransmission events to path discovery and collects the results.

    Besides buffering per-epoch discovered paths for the batch consumers, the
    agent exposes two streaming hooks (plain callables, set after
    construction) so evidence can flow out *as it is observed*:

    * ``on_new_path(epoch, path)`` — a path was discovered for the first time
      this epoch;
    * ``on_repeat_retransmissions(epoch, flow_id, extra)`` — an
      already-traced flow retransmitted ``extra`` more times (its cached path
      was updated in place).

    :class:`repro.api.sources.MonitoringEvidenceStream` binds these to the
    streaming service.
    """

    def __init__(self, path_discovery: PathDiscoveryAgent) -> None:
        self._path_discovery = path_discovery
        self._discovered: Dict[int, List[DiscoveredPath]] = {}
        self.stats = MonitoringStats()
        self.on_new_path: Optional[Callable[[int, DiscoveredPath], None]] = None
        self.on_repeat_retransmissions: Optional[Callable[[int, int, int], None]] = None

    # ------------------------------------------------------------------
    def handle_event(self, event: object) -> None:
        """Event-bus callback: dispatch on the event type."""
        if isinstance(event, RetransmissionEvent):
            self._on_retransmission(event)
        elif isinstance(event, ConnectionSetupFailureEvent):
            self.stats.setup_failure_events += 1

    def _on_retransmission(self, event: RetransmissionEvent) -> None:
        self.stats.retransmission_events += 1
        discovered = self._path_discovery.discover(event)
        if discovered is None:
            return
        self.stats.paths_discovered += 1
        epoch_paths = self._discovered.setdefault(event.epoch, [])
        if discovered not in epoch_paths:
            epoch_paths.append(discovered)
            if self.on_new_path is not None:
                self.on_new_path(event.epoch, discovered)
        elif self.on_repeat_retransmissions is not None:
            # the discovery agent already folded event.retransmissions into
            # its cached path; mirror the same increment downstream.
            self.on_repeat_retransmissions(
                event.epoch, event.flow_id, event.retransmissions
            )

    # ------------------------------------------------------------------
    def paths_for_epoch(self, epoch: int) -> List[DiscoveredPath]:
        """The unique discovered paths of flows that had retransmissions in ``epoch``."""
        return list(self._discovered.get(epoch, []))

    def clear_epoch(self, epoch: int) -> None:
        """Drop the stored paths of ``epoch`` (after the analysis agent consumed them)."""
        self._discovered.pop(epoch, None)
