"""A minimal Event-Tracing-for-Windows-like event bus.

In production 007 registers for ETW TCP retransmission notifications (Linux
has equivalent tracepoints).  Here the simulator publishes
:class:`~repro.netsim.events.RetransmissionEvent`s into this bus and the
monitoring agent subscribes to it; the indirection keeps the agent decoupled
from the simulator, exactly as it is decoupled from the kernel in production.
"""

from __future__ import annotations

from typing import Callable, List

EventCallback = Callable[[object], None]


class EtwEventSource:
    """A tiny synchronous publish/subscribe event bus."""

    def __init__(self) -> None:
        self._subscribers: List[EventCallback] = []
        self._published = 0

    def subscribe(self, callback: EventCallback) -> None:
        """Register a callback to receive every published event."""
        self._subscribers.append(callback)

    def publish(self, event: object) -> None:
        """Deliver ``event`` to every subscriber, in registration order."""
        self._published += 1
        for callback in self._subscribers:
            callback(event)

    @property
    def published(self) -> int:
        """Number of events published so far."""
        return self._published
