"""TCP monitoring agent (the ETW-fed component of 007)."""

from repro.monitoring.etw import EtwEventSource
from repro.monitoring.agent import TcpMonitoringAgent

__all__ = ["EtwEventSource", "TcpMonitoringAgent"]
