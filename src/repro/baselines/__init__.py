"""Optimization baselines and ground-truth capture (Everflow-like)."""

from repro.baselines.setcover import greedy_max_coverage
from repro.baselines.binary_program import BinaryProgramResult, solve_binary_program
from repro.baselines.integer_program import IntegerProgramResult, solve_integer_program
from repro.baselines.everflow import EverflowCapture

__all__ = [
    "greedy_max_coverage",
    "solve_binary_program",
    "BinaryProgramResult",
    "solve_integer_program",
    "IntegerProgramResult",
    "EverflowCapture",
]
