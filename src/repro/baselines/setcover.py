"""Greedy minimum set cover (Algorithm 2): MAX COVERAGE / Tomo.

The binary program of equation (3) is the NP-hard minimum set cover problem;
MAX COVERAGE and Tomo approximate it greedily — repeatedly pick the link that
explains the most still-unexplained failed flows until every failed flow is
explained.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.routing.routing_matrix import RoutingMatrix
from repro.topology.elements import DirectedLink


def greedy_max_coverage(
    routing: RoutingMatrix,
    failed_rows: Optional[Sequence[int]] = None,
) -> List[DirectedLink]:
    """Greedy set cover over the failed flows of ``routing``.

    Parameters
    ----------
    routing:
        Routing matrix whose rows are flows with retransmissions.
    failed_rows:
        Row indices to cover; defaults to every row (the usual case since the
        matrix is built only from flows that experienced retransmissions).

    Returns
    -------
    list[DirectedLink]
        The links picked, in pick order (most covering first).
    """
    matrix = routing.matrix
    if failed_rows is None:
        uncovered = set(range(matrix.shape[0]))
    else:
        uncovered = set(int(r) for r in failed_rows)
    chosen: List[DirectedLink] = []

    while uncovered:
        rows = np.array(sorted(uncovered), dtype=int)
        coverage = matrix[rows].sum(axis=0)
        best_cover = int(coverage.max()) if coverage.size else 0
        if best_cover == 0:
            # Remaining failures traverse no known link (e.g. fully partial
            # traceroutes); they cannot be explained.
            break
        # Deterministic tie-break on the link ordering of the matrix columns.
        best_col = int(np.flatnonzero(coverage == best_cover)[0])
        chosen.append(routing.links[best_col])
        explained = rows[matrix[rows, best_col] > 0]
        uncovered.difference_update(int(r) for r in explained)
    return chosen
