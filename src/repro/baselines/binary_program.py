"""The binary program of equation (3): minimum set cover as a MILP.

    minimize   ||p||_0
    subject to A p >= s,   p in {0, 1}^L

``A`` is the routing matrix of flows with retransmissions and ``s`` the
all-ones status vector.  The problem is NP-hard; the paper solves it exactly
with a commercial MILP solver purely as a benchmark.  We solve it exactly with
``scipy.optimize.milp`` when the instance is small enough and fall back to the
greedy approximation (MAX COVERAGE) otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.baselines.setcover import greedy_max_coverage
from repro.routing.routing_matrix import RoutingMatrix
from repro.topology.elements import DirectedLink

#: above this many matrix entries the exact solver is skipped by default.
DEFAULT_EXACT_SIZE_LIMIT = 2_000_000


@dataclass
class BinaryProgramResult:
    """Solution of the binary program."""

    blamed_links: List[DirectedLink] = field(default_factory=list)
    exact: bool = False
    objective: float = 0.0

    @property
    def num_blamed(self) -> int:
        """Number of links the program blames."""
        return len(self.blamed_links)


def solve_binary_program(
    routing: RoutingMatrix,
    exact: Optional[bool] = None,
    time_limit_s: float = 30.0,
) -> BinaryProgramResult:
    """Solve (or approximate) the binary program for ``routing``.

    Parameters
    ----------
    routing:
        Routing matrix of the flows that experienced retransmissions.
    exact:
        Force the exact MILP (``True``), force the greedy approximation
        (``False``), or decide automatically based on instance size (``None``).
    time_limit_s:
        Time limit handed to the MILP solver; on timeout the incumbent (or the
        greedy solution when none exists) is returned.
    """
    num_flows, num_links = routing.matrix.shape
    if num_flows == 0 or num_links == 0:
        return BinaryProgramResult(blamed_links=[], exact=True, objective=0.0)

    if exact is None:
        exact = routing.matrix.size <= DEFAULT_EXACT_SIZE_LIMIT
    if not exact:
        blamed = greedy_max_coverage(routing)
        return BinaryProgramResult(blamed_links=blamed, exact=False, objective=len(blamed))

    matrix = routing.matrix.astype(float)
    ones = np.ones(num_flows)
    constraint = LinearConstraint(matrix, lb=ones, ub=np.inf)
    result = milp(
        c=np.ones(num_links),
        constraints=[constraint],
        integrality=np.ones(num_links),
        bounds=Bounds(lb=0, ub=1),
        options={"time_limit": time_limit_s},
    )
    if result.x is None:
        blamed = greedy_max_coverage(routing)
        return BinaryProgramResult(blamed_links=blamed, exact=False, objective=len(blamed))

    chosen = np.flatnonzero(np.round(result.x) >= 1)
    blamed = [routing.links[int(i)] for i in chosen]
    return BinaryProgramResult(
        blamed_links=blamed, exact=True, objective=float(result.fun)
    )
