"""Everflow-like ground-truth packet capture.

Everflow mirrors tagged packets at every switch, so for a captured flow the
exact drop location is known.  It is far too expensive to run always-on —
which is 007's raison d'être — but the paper uses it as ground truth in the
Section 7/8 validations.  Here the "capture" simply exposes the simulator's
ground-truth drop bookkeeping through an Everflow-shaped API, restricted to
the hosts it was enabled on.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.netsim.flows import FlowRecord
from repro.routing.paths import Path
from repro.topology.elements import DirectedLink


class EverflowCapture:
    """Ground-truth capture over a subset of hosts.

    Parameters
    ----------
    enabled_hosts:
        Hosts whose outgoing traffic is captured; ``None`` captures everything
        (used when the capture serves as the simulator-wide oracle).
    """

    def __init__(self, enabled_hosts: Optional[Iterable[str]] = None) -> None:
        self._enabled: Optional[Set[str]] = (
            set(enabled_hosts) if enabled_hosts is not None else None
        )
        self._drop_links: Dict[int, Optional[DirectedLink]] = {}
        self._paths: Dict[int, Path] = {}
        self._captured_flows = 0

    # ------------------------------------------------------------------
    def capture_epoch(self, flows: Iterable[FlowRecord]) -> None:
        """Ingest the flows of one epoch (only those from enabled hosts)."""
        for flow in flows:
            if self._enabled is not None and flow.src_host not in self._enabled:
                continue
            self._captured_flows += 1
            self._paths[flow.flow_id] = flow.path
            self._drop_links[flow.flow_id] = flow.true_drop_link()

    # ------------------------------------------------------------------
    def is_captured(self, flow_id: int) -> bool:
        """True when the flow's packets were captured."""
        return flow_id in self._paths

    def drop_link_of(self, flow_id: int) -> Optional[DirectedLink]:
        """The link where the flow's packets were dropped (``None`` = no drop)."""
        return self._drop_links.get(flow_id)

    def path_of(self, flow_id: int) -> Optional[Path]:
        """The exact path of a captured flow."""
        return self._paths.get(flow_id)

    def flows_with_drops(self) -> List[int]:
        """IDs of captured flows that lost at least one packet."""
        return sorted(
            flow_id for flow_id, link in self._drop_links.items() if link is not None
        )

    @property
    def captured_flows(self) -> int:
        """Number of flows captured so far."""
        return self._captured_flows
