"""The integer program of equation (4): drop-count assignment as a MILP.

    minimize   ||p||_0
    subject to A p >= c
               ||p||_1 = ||c||_1
               p_i in {0, 1, 2, ...}

``c`` collects the number of retransmissions of each flow; the solution
assigns a drop count to each link, which induces a ranking (more drops =
worse link).  The ``||p||_0`` objective is linearised with indicator binaries
``y_i`` and the big-M constraints ``p_i <= M y_i``.

Like the binary program this is NP-hard and used only as a benchmark; a
greedy weighted-cover heuristic stands in when the instance is too large for
the exact solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.routing.routing_matrix import RoutingMatrix
from repro.topology.elements import DirectedLink

DEFAULT_EXACT_SIZE_LIMIT = 500_000


@dataclass
class IntegerProgramResult:
    """Solution of the integer program."""

    drop_counts: Dict[DirectedLink, float] = field(default_factory=dict)
    exact: bool = False

    @property
    def blamed_links(self) -> List[DirectedLink]:
        """Links with a positive drop count, sorted by decreasing count."""
        return [
            link
            for link, count in sorted(
                self.drop_counts.items(), key=lambda kv: (-kv[1], kv[0])
            )
            if count > 0
        ]

    def ranking(self) -> List[Tuple[DirectedLink, float]]:
        """``(link, assigned drops)`` sorted by decreasing drops."""
        return sorted(self.drop_counts.items(), key=lambda kv: (-kv[1], kv[0]))

    @property
    def num_blamed(self) -> int:
        """Number of links with positive assigned drops."""
        return len(self.blamed_links)


def solve_integer_program(
    routing: RoutingMatrix,
    retransmissions: Sequence[int],
    exact: Optional[bool] = None,
    time_limit_s: float = 30.0,
) -> IntegerProgramResult:
    """Solve (or approximate) the integer program.

    Parameters
    ----------
    routing:
        Routing matrix of the flows with retransmissions.
    retransmissions:
        Per-flow retransmission counts (the vector ``c``), aligned with the
        matrix rows.
    exact, time_limit_s:
        As in :func:`~repro.baselines.binary_program.solve_binary_program`.
    """
    num_flows, num_links = routing.matrix.shape
    if len(retransmissions) != num_flows:
        raise ValueError("retransmissions must align with the routing matrix rows")
    if num_flows == 0 or num_links == 0:
        return IntegerProgramResult(drop_counts={}, exact=True)

    counts = np.asarray(retransmissions, dtype=float)
    if exact is None:
        exact = routing.matrix.size <= DEFAULT_EXACT_SIZE_LIMIT
    if exact:
        result = _solve_exact(routing, counts, time_limit_s)
        if result is not None:
            return result
    return _solve_greedy(routing, counts)


# ----------------------------------------------------------------------
def _solve_exact(
    routing: RoutingMatrix, counts: np.ndarray, time_limit_s: float
) -> Optional[IntegerProgramResult]:
    """Exact MILP formulation; returns ``None`` when the solver fails."""
    num_flows, num_links = routing.matrix.shape
    total = float(counts.sum())
    big_m = max(total, 1.0)

    # Variables: [p_0..p_{L-1}, y_0..y_{L-1}]
    num_vars = 2 * num_links
    objective = np.concatenate([np.zeros(num_links), np.ones(num_links)])

    a_matrix = routing.matrix.astype(float)
    cover = LinearConstraint(
        np.hstack([a_matrix, np.zeros((num_flows, num_links))]),
        lb=counts,
        ub=np.inf,
    )
    conservation = LinearConstraint(
        np.concatenate([np.ones(num_links), np.zeros(num_links)]).reshape(1, -1),
        lb=total,
        ub=total,
    )
    indicator = LinearConstraint(
        np.hstack([np.eye(num_links), -big_m * np.eye(num_links)]),
        lb=-np.inf,
        ub=np.zeros(num_links),
    )
    bounds = Bounds(
        lb=np.zeros(num_vars),
        ub=np.concatenate([np.full(num_links, big_m), np.ones(num_links)]),
    )
    result = milp(
        c=objective,
        constraints=[cover, conservation, indicator],
        integrality=np.ones(num_vars),
        bounds=bounds,
        options={"time_limit": time_limit_s},
    )
    if result.x is None:
        return None
    drops = np.round(result.x[:len(routing.links)])
    drop_counts = {
        routing.links[i]: float(drops[i]) for i in range(len(routing.links)) if drops[i] > 0
    }
    return IntegerProgramResult(drop_counts=drop_counts, exact=True)


def _solve_greedy(routing: RoutingMatrix, counts: np.ndarray) -> IntegerProgramResult:
    """Greedy heuristic: repeatedly blame the link carrying the most unexplained drops."""
    matrix = routing.matrix
    remaining = counts.copy()
    drop_counts: Dict[DirectedLink, float] = {}

    while remaining.sum() > 0:
        weights = matrix.T @ remaining
        best = int(np.argmax(weights))
        if weights[best] <= 0:
            break
        rows = np.flatnonzero(matrix[:, best] > 0)
        explained = float(remaining[rows].sum())
        drop_counts[routing.links[best]] = drop_counts.get(routing.links[best], 0.0) + explained
        remaining[rows] = 0.0
    return IntegerProgramResult(drop_counts=drop_counts, exact=False)
