"""Deterministic per-switch hashed ECMP forwarding over a Clos topology.

Every switch hashes the packet five-tuple together with a private seed to pick
one of its equal-cost next hops (RFC 2992 style).  The seeds are unknown to
the end hosts — mirroring the paper's observation that ECMP functions are
proprietary and change across reboots — which is why 007 must *measure* paths
with traceroute instead of computing them.

The router also honours a ``link_down`` predicate so that BGP-style rerouting
around failed links can be simulated (see :mod:`repro.routing.bgp`).
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.routing.fivetuple import FiveTuple
from repro.routing.paths import Path
from repro.topology.clos import ClosTopology
from repro.topology.elements import DirectedLink
from repro.util.rng import RngLike, ensure_rng

LinkDownPredicate = Callable[[DirectedLink], bool]


class NoRouteError(RuntimeError):
    """Raised when every candidate next hop toward the destination is down."""


def _stable_hash(*parts: object) -> int:
    """A process-stable 32-bit hash of the given parts."""
    payload = "|".join(str(p) for p in parts).encode("utf-8")
    return zlib.crc32(payload)


class EcmpRouter:
    """ECMP routing over a :class:`~repro.topology.clos.ClosTopology`.

    Parameters
    ----------
    topology:
        The Clos topology to route over.
    rng:
        Seed or generator used to draw the per-switch hash seeds.
    link_down:
        Optional predicate; next hops whose outgoing link satisfies it are
        excluded from the ECMP group (models BGP withdrawing routes over
        failed links).
    cache_paths:
        Memoize :meth:`route` results per ``(five-tuple, src, dst)``.  ECMP is
        a pure function of the hash inputs and the switch seeds, so repeated
        lookups (data packets, then the traceroute of the same flow, then
        re-routes across epochs) hit the cache.  Caching suspends itself while
        a custom ``link_down`` predicate is installed — predicates are often
        stateful (e.g. :class:`~repro.routing.bgp.BgpRerouter`) and can change
        routing without the router seeing a mutation.
    max_cached_routes:
        Size bound of the memo table.  Long runs route a fresh source port per
        connection, so the table would otherwise grow without limit; when the
        bound is hit the table is dropped wholesale (epoch-cache semantics)
        and refills with the currently-hot flows.
    """

    DEFAULT_MAX_CACHED_ROUTES = 200_000

    def __init__(
        self,
        topology: ClosTopology,
        rng: RngLike = 0,
        link_down: Optional[LinkDownPredicate] = None,
        cache_paths: bool = True,
        max_cached_routes: int = DEFAULT_MAX_CACHED_ROUTES,
    ) -> None:
        self._topology = topology
        self._rng = ensure_rng(rng)
        self._link_down = link_down or (lambda link: False)
        self._has_custom_link_down = link_down is not None
        self._cache_paths = cache_paths
        self._max_cached_routes = max(1, int(max_cached_routes))
        self._route_cache: Dict[Tuple[tuple, str, str], Path] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self._seeds = {
            name: int(self._rng.integers(0, 2**31 - 1))
            for name in sorted(topology.switches)
        }

    # ------------------------------------------------------------------
    @property
    def topology(self) -> ClosTopology:
        """The topology this router forwards over."""
        return self._topology

    def set_link_down_predicate(self, predicate: Optional[LinkDownPredicate]) -> None:
        """Replace the link-down predicate (``None`` restores "all links up")."""
        self._link_down = predicate or (lambda link: False)
        self._has_custom_link_down = predicate is not None
        self.clear_route_cache()

    def reseed_switch(self, switch: str, rng: RngLike = None) -> None:
        """Change a switch's ECMP seed, as happens when the switch reboots."""
        generator = ensure_rng(rng) if rng is not None else self._rng
        self._seeds[switch] = int(generator.integers(0, 2**31 - 1))
        self.clear_route_cache()

    # ------------------------------------------------------------------
    @property
    def cache_enabled(self) -> bool:
        """True when :meth:`route` results are currently being memoized."""
        return self._cache_paths and not self._has_custom_link_down

    def clear_route_cache(self) -> None:
        """Drop every memoized route (seeds or reachability changed)."""
        self._route_cache.clear()

    def seed_of(self, switch: str) -> int:
        """The (normally proprietary) ECMP seed of ``switch``."""
        return self._seeds[switch]

    # ------------------------------------------------------------------
    def route(self, flow: FiveTuple, src_host: str, dst_host: str) -> Path:
        """Compute the path the packets of ``flow`` take from ``src_host`` to ``dst_host``.

        Raises :class:`NoRouteError` when a switch on the way has no live next
        hop toward the destination.
        """
        topo = self._topology
        if not topo.is_host(src_host) or not topo.is_host(dst_host):
            raise ValueError("route() endpoints must be hosts")
        if src_host == dst_host:
            raise ValueError("cannot route a flow from a host to itself")

        caching = self.cache_enabled
        if caching:
            key = (flow.canonical_key(), src_host, dst_host)
            cached = self._route_cache.get(key)
            if cached is not None:
                self.cache_hits += 1
                return cached
            self.cache_misses += 1

        path = self._compute_route(flow, src_host, dst_host)
        if caching:
            if len(self._route_cache) >= self._max_cached_routes:
                self._route_cache.clear()
            self._route_cache[key] = path
        return path

    def _compute_route(self, flow: FiveTuple, src_host: str, dst_host: str) -> Path:
        """Walk the fabric hop by hop, hashing the flow at every ECMP group."""
        topo = self._topology
        nodes: List[str] = [src_host]
        src_tor = topo.host(src_host).tor
        dst_tor = topo.host(dst_host).tor
        dst_pod = topo.host(dst_host).pod
        self._append_hop(nodes, src_host, src_tor)

        if src_tor == dst_tor:
            self._append_hop(nodes, src_tor, dst_host)
            return Path.from_nodes(nodes)

        # Up to a tier-1 switch of the source pod.
        src_pod = topo.host(src_host).pod
        t1_candidates = [s.name for s in topo.tier1s(src_pod)]
        t1 = self._select(src_tor, flow, t1_candidates)
        self._append_hop(nodes, src_tor, t1)

        if src_pod == dst_pod:
            self._append_hop(nodes, t1, dst_tor)
            self._append_hop(nodes, dst_tor, dst_host)
            return Path.from_nodes(nodes)

        # Cross-pod: up to a tier-2 switch, down into the destination pod.
        t2_candidates = [s.name for s in topo.tier2s()]
        t2 = self._select(t1, flow, t2_candidates)
        self._append_hop(nodes, t1, t2)

        dst_t1_candidates = [s.name for s in topo.tier1s(dst_pod)]
        dst_t1 = self._select(t2, flow, dst_t1_candidates)
        self._append_hop(nodes, t2, dst_t1)

        self._append_hop(nodes, dst_t1, dst_tor)
        self._append_hop(nodes, dst_tor, dst_host)
        return Path.from_nodes(nodes)

    def route_reverse(self, flow: FiveTuple, src_host: str, dst_host: str) -> Path:
        """Path of the reverse direction (ACKs): hashes the reversed five-tuple."""
        return self.route(flow.reversed(), dst_host, src_host)

    # ------------------------------------------------------------------
    def all_paths(self, src_host: str, dst_host: str) -> List[Path]:
        """Enumerate every ECMP-usable path between two hosts (ignoring failures).

        Used by the analytic vote-adjustment step of Algorithm 1 and by tests;
        the count is ``n1`` for intra-pod flows and ``n1 * n2 * n1`` for
        cross-pod flows.
        """
        topo = self._topology
        src = topo.host(src_host)
        dst = topo.host(dst_host)
        if src.tor == dst.tor:
            return [Path.from_nodes([src_host, src.tor, dst_host])]
        paths: List[Path] = []
        if src.pod == dst.pod:
            for t1 in topo.tier1s(src.pod):
                paths.append(
                    Path.from_nodes([src_host, src.tor, t1.name, dst.tor, dst_host])
                )
            return paths
        for t1 in topo.tier1s(src.pod):
            for t2 in topo.tier2s():
                for dst_t1 in topo.tier1s(dst.pod):
                    paths.append(
                        Path.from_nodes(
                            [
                                src_host,
                                src.tor,
                                t1.name,
                                t2.name,
                                dst_t1.name,
                                dst.tor,
                                dst_host,
                            ]
                        )
                    )
        return paths

    # ------------------------------------------------------------------
    def _select(self, switch: str, flow: FiveTuple, candidates: Sequence[str]) -> str:
        """Pick the next hop at ``switch`` among ``candidates`` for ``flow``."""
        live = [
            c
            for c in candidates
            if not self._link_down(DirectedLink(switch, c))
        ]
        if not live:
            raise NoRouteError(
                f"switch {switch} has no live next hop toward any of {list(candidates)}"
            )
        index = _stable_hash(flow.canonical_key(), self._seeds[switch]) % len(live)
        return live[index]

    def _append_hop(self, nodes: List[str], src: str, dst: str) -> None:
        """Append ``dst`` to ``nodes`` after checking the ``src``->``dst`` link is live."""
        if self._link_down(DirectedLink(src, dst)):
            raise NoRouteError(f"link {src}->{dst} is down and has no ECMP alternative")
        nodes.append(dst)
