"""The TCP/IP five-tuple, the unit ECMP hashes on.

All packets of a flow share the five-tuple and therefore the path (RFC 2992).
Traceroute probes must carry the *same* five-tuple as the flow they trace —
this is the central engineering constraint of the path discovery agent.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True, order=True)
class FiveTuple:
    """An IP five-tuple ``(src_ip, dst_ip, src_port, dst_port, protocol)``."""

    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    protocol: int = 6  # TCP

    def __post_init__(self) -> None:
        for port in (self.src_port, self.dst_port):
            if not 0 <= port <= 65535:
                raise ValueError(f"port {port} outside [0, 65535]")
        if not 0 <= self.protocol <= 255:
            raise ValueError(f"protocol {self.protocol} outside [0, 255]")

    def reversed(self) -> "FiveTuple":
        """The five-tuple of packets flowing in the opposite direction."""
        return FiveTuple(
            src_ip=self.dst_ip,
            dst_ip=self.src_ip,
            src_port=self.dst_port,
            dst_port=self.src_port,
            protocol=self.protocol,
        )

    def with_destination(self, dst_ip: str, dst_port: int | None = None) -> "FiveTuple":
        """Return a copy with the destination rewritten (VIP -> DIP rewriting)."""
        return replace(
            self,
            dst_ip=dst_ip,
            dst_port=self.dst_port if dst_port is None else dst_port,
        )

    def with_source(self, src_ip: str, src_port: int | None = None) -> "FiveTuple":
        """Return a copy with the source rewritten (SNAT rewriting)."""
        return replace(
            self,
            src_ip=src_ip,
            src_port=self.src_port if src_port is None else src_port,
        )

    def canonical_key(self) -> tuple:
        """A hashable key identifying the flow (direction sensitive)."""
        return (self.src_ip, self.dst_ip, self.src_port, self.dst_port, self.protocol)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return (
            f"{self.src_ip}:{self.src_port}->{self.dst_ip}:{self.dst_port}"
            f"/{self.protocol}"
        )
