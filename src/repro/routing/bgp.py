"""BGP-style reroute-around-failure behaviour.

A lossy or dead link may cause BGP sessions across it to fail, after which the
switches withdraw routes over it and ECMP stops using it.  The paper relies on
paths staying stable for a few milliseconds after a drop so that traceroutes
measure the original path; :class:`BgpRerouter` models both the steady state
(links withdrawn) and an optional convergence delay during which the old path
is still in use.
"""

from __future__ import annotations

from typing import Iterable, Set

from repro.topology.elements import DirectedLink, Link


class BgpRerouter:
    """Tracks withdrawn links and exposes a ``link_down`` predicate for ECMP.

    Parameters
    ----------
    convergence_epochs:
        Number of epochs a withdrawal takes to propagate.  ``0`` (default)
        means reroutes take effect immediately; positive values delay the
        effect, which lets experiments reproduce the "traceroute raced a
        reroute" corner case of Section 4.2.
    """

    def __init__(self, convergence_epochs: int = 0) -> None:
        if convergence_epochs < 0:
            raise ValueError("convergence_epochs must be >= 0")
        self._convergence_epochs = convergence_epochs
        self._withdrawn: Set[Link] = set()
        self._pending: dict[Link, int] = {}

    # ------------------------------------------------------------------
    def withdraw_link(self, link: Link | DirectedLink) -> None:
        """Withdraw routes over a physical link (both directions)."""
        physical = link.undirected() if isinstance(link, DirectedLink) else link
        if physical in self._withdrawn:
            return
        if self._convergence_epochs == 0:
            self._withdrawn.add(physical)
        else:
            self._pending.setdefault(physical, self._convergence_epochs)

    def restore_link(self, link: Link | DirectedLink) -> None:
        """Re-announce routes over a previously withdrawn link."""
        physical = link.undirected() if isinstance(link, DirectedLink) else link
        self._withdrawn.discard(physical)
        self._pending.pop(physical, None)

    def advance_epoch(self) -> None:
        """Advance simulated time by one epoch, converging pending withdrawals."""
        done = []
        for link in list(self._pending):
            self._pending[link] -= 1
            if self._pending[link] <= 0:
                done.append(link)
        for link in done:
            self._pending.pop(link, None)
            self._withdrawn.add(link)

    # ------------------------------------------------------------------
    @property
    def withdrawn_links(self) -> Set[Link]:
        """The set of currently withdrawn physical links."""
        return set(self._withdrawn)

    def is_link_down(self, link: DirectedLink) -> bool:
        """Predicate suitable for :meth:`EcmpRouter.set_link_down_predicate`."""
        return link.undirected() in self._withdrawn

    def withdraw_many(self, links: Iterable[Link | DirectedLink]) -> None:
        """Withdraw a collection of links."""
        for link in links:
            self.withdraw_link(link)
