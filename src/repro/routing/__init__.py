"""Routing substrate: five-tuples, ECMP forwarding, paths and routing matrices."""

from repro.routing.fivetuple import FiveTuple
from repro.routing.paths import Path
from repro.routing.ecmp import EcmpRouter
from repro.routing.routing_matrix import RoutingMatrix, build_routing_matrix
from repro.routing.bgp import BgpRerouter

__all__ = [
    "FiveTuple",
    "Path",
    "EcmpRouter",
    "RoutingMatrix",
    "build_routing_matrix",
    "BgpRerouter",
]
