"""Routing matrices: the ``A`` matrix of the paper's optimization programs.

Given the set of flows that experienced retransmissions in an epoch and their
(discovered) paths, the binary program (eq. 3) and the integer program (eq. 4)
operate on a ``C x L`` 0/1 matrix ``A`` where ``A[i, j] = 1`` iff flow ``i``
traverses link ``j``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.routing.paths import Path
from repro.topology.elements import DirectedLink


@dataclass
class RoutingMatrix:
    """A routing matrix together with its row/column labelling."""

    matrix: np.ndarray
    links: List[DirectedLink]
    flow_ids: List[object]
    _column_of: Dict[DirectedLink, int]

    @property
    def num_flows(self) -> int:
        """Number of rows (flows)."""
        return self.matrix.shape[0]

    @property
    def num_links(self) -> int:
        """Number of columns (directed links)."""
        return self.matrix.shape[1]

    def column_of(self, link: DirectedLink) -> int:
        """Column index of ``link`` (raises ``KeyError`` if absent)."""
        return self._column_of[link]

    def links_of_flow(self, row: int) -> List[DirectedLink]:
        """The links traversed by the flow in ``row``."""
        return [self.links[j] for j in np.flatnonzero(self.matrix[row])]


def build_routing_matrix(
    paths: Sequence[Path | Sequence[DirectedLink]],
    flow_ids: Sequence[object] | None = None,
    links: Sequence[DirectedLink] | None = None,
) -> RoutingMatrix:
    """Build a :class:`RoutingMatrix` from flow paths.

    Parameters
    ----------
    paths:
        One path per flow (rows follow this order).  Each entry may be a
        :class:`Path` or a plain sequence of directed links — the latter
        supports partial traceroutes whose known links are not contiguous.
    flow_ids:
        Optional identifiers for the rows; defaults to ``range(len(paths))``.
    links:
        Optional fixed column ordering.  When omitted, the columns are the
        sorted union of all links appearing on the given paths.
    """
    if flow_ids is None:
        flow_ids = list(range(len(paths)))
    if len(flow_ids) != len(paths):
        raise ValueError("flow_ids and paths must have the same length")

    link_lists = [
        tuple(path.links) if isinstance(path, Path) else tuple(path) for path in paths
    ]
    if links is None:
        seen = set()
        for path_links in link_lists:
            seen.update(path_links)
        links = sorted(seen)
    links = list(links)
    column_of = {link: j for j, link in enumerate(links)}

    matrix = np.zeros((len(link_lists), len(links)), dtype=np.int8)
    for i, path_links in enumerate(link_lists):
        for link in path_links:
            j = column_of.get(link)
            if j is not None:
                matrix[i, j] = 1
    return RoutingMatrix(
        matrix=matrix,
        links=links,
        flow_ids=list(flow_ids),
        _column_of=column_of,
    )
