"""Path objects: ordered sequences of directed links between two hosts."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

from repro.topology.elements import DirectedLink


@dataclass(frozen=True)
class Path:
    """An ordered, loop-free sequence of directed links from ``src`` to ``dst``."""

    links: Tuple[DirectedLink, ...]

    def __post_init__(self) -> None:
        if not self.links:
            raise ValueError("a path must contain at least one link")
        for prev, nxt in zip(self.links, self.links[1:]):
            if prev.dst != nxt.src:
                raise ValueError(
                    f"path is not contiguous: {prev} followed by {nxt}"
                )

    @staticmethod
    def from_nodes(nodes: Sequence[str]) -> "Path":
        """Build a path from an ordered node sequence (``len(nodes) >= 2``)."""
        if len(nodes) < 2:
            raise ValueError("need at least two nodes to form a path")
        return Path(tuple(DirectedLink(a, b) for a, b in zip(nodes, nodes[1:])))

    # ------------------------------------------------------------------
    @property
    def src(self) -> str:
        """Origin node of the path."""
        return self.links[0].src

    @property
    def dst(self) -> str:
        """Final node of the path."""
        return self.links[-1].dst

    @property
    def hop_count(self) -> int:
        """Number of links on the path (the paper's ``h``)."""
        return len(self.links)

    def nodes(self) -> List[str]:
        """Ordered node names along the path."""
        return [self.links[0].src] + [link.dst for link in self.links]

    def switch_hops(self) -> List[str]:
        """The intermediate nodes (everything but the two end hosts)."""
        return self.nodes()[1:-1]

    def contains_link(self, link: DirectedLink) -> bool:
        """True when ``link`` (directed) lies on this path."""
        return link in self.links

    def contains_node(self, name: str) -> bool:
        """True when ``name`` is visited by this path."""
        return name in self.nodes()

    def prefix(self, num_links: int) -> "Path":
        """Return the first ``num_links`` links (used for partial traceroutes)."""
        if num_links < 1:
            raise ValueError("prefix must keep at least one link")
        return Path(self.links[: num_links])

    def __iter__(self) -> Iterator[DirectedLink]:
        return iter(self.links)

    def __len__(self) -> int:
        return len(self.links)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return " -> ".join(self.nodes())
