"""Figure 13 / Section 7.3: vote gap between the bad link and the best good link.

On the test cluster a single T1->ToR link is given a drop rate of 1%, 0.5% (we
also include the paper's 0.1% variant) or 0.05%; across many epochs we record
``votes(bad link) - max votes(any good link)``.  Positive values mean the bad
link is the top-ranked link.  The paper finds the bad link always ranks first
at 1% and 0.1%, and ranks in the top 2 in ~89% of epochs at 0.05%.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.ranking import rank_of_link, vote_gap
from repro.experiments.base import ExperimentResult
from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.topology.elements import LinkLevel
from repro.util.stats import percentile

DEFAULT_DROP_RATES = (1e-2, 5e-3, 5e-4)


def testcluster_config(
    drop_rate: float, seed: int = 0, epochs: int = 4
) -> ScenarioConfig:
    """A Section 7 test-cluster scenario: single pod, 10 ToRs, one T1->ToR failure."""
    return ScenarioConfig(
        npod=1,
        n0=10,
        n1=4,
        n2=1,
        hosts_per_tor=4,
        failure_kind="level",
        failure_level=LinkLevel.LEVEL1,
        failure_downward=True,  # T1 -> ToR direction, as in the paper
        drop_rate_range=(drop_rate, drop_rate),
        epochs=epochs,
        seed=seed,
        connections_per_host=120,
    )


def run_fig13(
    drop_rates: Sequence[float] = DEFAULT_DROP_RATES,
    epochs: int = 6,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate Figure 13 (distribution of the bad-vs-good vote gap)."""
    result = ExperimentResult(
        name="Figure 13",
        description="votes(bad link) - max votes(good link) on the test cluster",
    )
    for rate in drop_rates:
        scenario = run_scenario(testcluster_config(rate, seed=seed, epochs=epochs))
        bad_links = scenario.failure_scenario.bad_links
        gaps: List[float] = []
        ranks: List[int] = []
        for report in scenario.reports:
            gaps.append(vote_gap(report.tally, bad_links))
            rank = rank_of_link(report.tally, bad_links[0])
            ranks.append(rank if rank is not None else len(report.tally.links()) + 1)
        result.add_point(
            {"drop_rate": rate},
            {
                "epochs": float(len(gaps)),
                "median_vote_gap": percentile(gaps, 50),
                "p10_vote_gap": percentile(gaps, 10),
                "p90_vote_gap": percentile(gaps, 90),
                "frac_epochs_bad_link_ranked_first": float(np.mean([r == 1 for r in ranks])),
                "frac_epochs_bad_link_in_top2": float(np.mean([r <= 2 for r in ranks])),
            },
        )
    return result
