"""Table 1: distribution of ICMP responses per second per switch.

The paper reports, over a week of production operation, that 69% of
(switch, second) samples saw no ICMP response, 30.98% saw between 1 and 3,
only 0.02% saw more than 3, and the maximum observed rate (11/s) stayed well
below ``Tmax = 100`` — i.e. Theorem 1's budget holds in practice.  We
regenerate the same distribution from a multi-epoch run of the full pipeline
with failures injected.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.theory.theorem1 import traceroute_rate_bound


def run_table1(
    epochs: int = 10,
    num_bad_links: int = 4,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate Table 1 from ``epochs`` epochs of the full 007 pipeline."""
    config = ScenarioConfig(
        num_bad_links=num_bad_links,
        drop_rate_range=(5e-4, 5e-3),
        epochs=epochs,
        seed=seed,
    )
    scenario = run_scenario(config)
    system = scenario.system
    total_seconds = int(epochs * system.config.epoch_duration_s)
    stats = system.icmp_limiter.usage_stats(total_seconds)

    result = ExperimentResult(
        name="Table 1", description="ICMP responses per second per switch"
    )
    result.add_point(
        {"source": "007 reproduction"},
        {
            "frac_T=0": stats.fraction_zero,
            "frac_0<T<=3": stats.fraction_low,
            "frac_T>3": stats.fraction_high,
            "max_T": float(stats.max_rate),
            "tmax": float(system.icmp_limiter.tmax),
            "theorem1_Ct": traceroute_rate_bound(
                scenario.topology.params, tmax=system.icmp_limiter.tmax
            ),
        },
    )
    result.add_point(
        {"source": "paper (production, 1 week)"},
        {
            "frac_T=0": 0.69,
            "frac_0<T<=3": 0.3098,
            "frac_T>3": 0.0002,
            "max_T": 11.0,
            "tmax": 100.0,
        },
    )
    return result
