"""Figure 1: motivation measurements from a (simulated) production day.

* Figure 1a — CDF of the number of flows with at least one retransmission per
  30 s interval, conditioned on the total number of packets dropped in the
  interval (> 0, > 1, > 10, > 30, > 50 drops).
* Figure 1b — CDF of the fraction of all drops in an interval attributed to a
  single connection (intervals with >= 10 total drops).

The qualitative claims we reproduce: when many packets drop, many flows see
drops (95% of >= 10-drop intervals involve at least 3 flows), and no single
flow captures most of the drops (in >= 80% of cases no flow exceeds ~34%).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.util.stats import percentile

DROP_CONDITIONS = (0, 1, 10, 30, 50)


def run_fig01(
    epochs: int = 12,
    num_bad_links: int = 3,
    seed: int = 0,
    scale: float = 1.0,
) -> ExperimentResult:
    """Regenerate the Figure 1 distributions from ``epochs`` simulated intervals."""
    config = ScenarioConfig(
        num_bad_links=num_bad_links,
        drop_rate_range=(1e-4, 2e-3),
        epochs=epochs,
        seed=seed,
        connections_per_host=max(10, int(40 * scale)),
    )
    scenario = run_scenario(config)

    flows_with_drops: Dict[int, List[int]] = {cond: [] for cond in DROP_CONDITIONS}
    max_fraction_per_interval: List[float] = []

    for epoch_result in scenario.epoch_results:
        drops_by_flow = epoch_result.drops_by_flow()
        total_drops = sum(drops_by_flow.values())
        num_flows_with_drops = len(drops_by_flow)
        for condition in DROP_CONDITIONS:
            if total_drops > condition:
                flows_with_drops[condition].append(num_flows_with_drops)
        if total_drops >= 10 and drops_by_flow:
            max_fraction_per_interval.append(max(drops_by_flow.values()) / total_drops)

    result = ExperimentResult(
        name="Figure 1",
        description="flows with drops per interval and per-flow drop share",
    )
    for condition in DROP_CONDITIONS:
        samples = flows_with_drops[condition]
        result.add_point(
            {"panel": "1a", "condition": f"> {condition} drops"},
            {
                "intervals": float(len(samples)),
                "median_flows_with_drops": percentile(samples, 50),
                "p5_flows_with_drops": percentile(samples, 5),
                "p95_flows_with_drops": percentile(samples, 95),
                "frac_intervals_with_3plus_flows": (
                    float(np.mean([s >= 3 for s in samples])) if samples else float("nan")
                ),
            },
        )
    result.add_point(
        {"panel": "1b", "condition": ">= 10 total drops"},
        {
            "intervals": float(len(max_fraction_per_interval)),
            "median_max_flow_share": percentile(max_fraction_per_interval, 50),
            "p80_max_flow_share": percentile(max_fraction_per_interval, 80),
            "p95_max_flow_share": percentile(max_fraction_per_interval, 95),
        },
    )
    return result
