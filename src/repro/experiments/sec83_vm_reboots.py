"""Section 8.3 / Figure 14 / Appendix A: diagnosing VM reboots.

A fraction of every host's flows are "storage" flows (VM image mounts).  When
a storage flow fails or accumulates enough retransmissions, the VM on that
host panics and reboots.  For every reboot, 007 names a culprit link; we
report how often a culprit could be named, how often it matches the ground
truth, the per-hour reboot counts (Figure 14), and the breakdown of detected
problem links by location (the paper: 48% server-ToR, 24% T1-ToR, 6% T2-T1).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.pipeline import SystemConfig, Zero07System
from repro.experiments.base import ExperimentResult
from repro.experiments.scenario import ScenarioConfig, inject_failures
from repro.netsim.failures import VmRebootModel
from repro.netsim.links import LinkStateTable
from repro.netsim.simulator import SimulationConfig
from repro.netsim.traffic import TrafficDemand, UniformTraffic
from repro.topology.clos import ClosTopology
from repro.topology.elements import LinkLevel
from repro.util.rng import ensure_rng, spawn_rng


class StorageTraffic(UniformTraffic):
    """Uniform traffic where a fraction of each host's flows mount VM images."""

    def __init__(self, *args, storage_fraction: float = 0.2, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if not 0.0 <= storage_fraction <= 1.0:
            raise ValueError("storage_fraction must be in [0, 1]")
        self._storage_fraction = storage_fraction

    def generate(self, epoch: int, rng=None) -> List[TrafficDemand]:
        generator = ensure_rng(rng)
        demands = super().generate(epoch, rng=generator)
        relabelled: List[TrafficDemand] = []
        for demand in demands:
            if generator.random() < self._storage_fraction:
                demand = TrafficDemand(
                    src_host=demand.src_host,
                    dst_host=demand.dst_host,
                    num_packets=demand.num_packets,
                    kind="storage",
                )
            relabelled.append(demand)
        return relabelled


def run_sec83(
    epochs: int = 8,
    num_bad_links: int = 3,
    storage_fraction: float = 0.25,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate the Section 8.3 VM-reboot diagnosis study."""
    config = ScenarioConfig(
        num_bad_links=num_bad_links,
        drop_rate_range=(2e-3, 2e-2),
        failure_levels=(LinkLevel.HOST, LinkLevel.LEVEL1, LinkLevel.LEVEL2),
        epochs=epochs,
        seed=seed,
    )
    topology = ClosTopology(config.topology_params())
    link_table = LinkStateTable(topology, rng=spawn_rng(seed, 1))
    failure_scenario = inject_failures(config, topology, link_table, seed)
    traffic = StorageTraffic(
        topology,
        connections_per_host=config.connections_per_host,
        packets_per_flow=config.packets_per_flow,
        storage_fraction=storage_fraction,
    )
    system = Zero07System(
        topology=topology,
        traffic=traffic,
        link_table=link_table,
        config=SystemConfig(simulation=SimulationConfig(simulate_setup_failures=False)),
        rng=seed,
    )
    reboot_model = VmRebootModel(retransmission_threshold=3)

    reboots_per_epoch: List[int] = []
    explained = 0
    correct = 0
    total_reboots = 0
    location_counts: Dict[str, int] = {"host-ToR": 0, "ToR-T1": 0, "T1-T2": 0}

    for epoch in range(epochs):
        sim_result, report = system.run_epoch(epoch)
        reboots = reboot_model.reboots_for_epoch(sim_result.flows)
        reboots_per_epoch.append(len(reboots))
        total_reboots += len(reboots)
        for reboot in reboots:
            predicted = report.cause_of_flow(_flow_id_of_reboot(sim_result, reboot))
            if predicted is None and report.detected_links:
                # Fall back to the epoch's top-voted link touching the host, as
                # the operators would when the flow itself was not traced.
                predicted = report.detected_links[0]
            if predicted is not None:
                explained += 1
                if reboot.cause_link is not None and predicted == reboot.cause_link:
                    correct += 1
        for link in report.detected_links:
            level = topology.link_level(link)
            if level == LinkLevel.HOST:
                location_counts["host-ToR"] += 1
            elif level == LinkLevel.LEVEL1:
                location_counts["ToR-T1"] += 1
            elif level == LinkLevel.LEVEL2:
                location_counts["T1-T2"] += 1

    total_detections = max(1, sum(location_counts.values()))
    result = ExperimentResult(
        name="Section 8.3 / Figure 14", description="VM reboot diagnosis"
    )
    result.add_point(
        {"epochs": epochs, "storage_fraction": storage_fraction},
        {
            "total_reboots": float(total_reboots),
            "reboots_per_epoch_mean": float(np.mean(reboots_per_epoch)),
            "reboots_per_epoch_max": float(np.max(reboots_per_epoch)),
            "frac_reboots_with_cause_named": explained / total_reboots if total_reboots else float("nan"),
            "frac_named_causes_correct": correct / explained if explained else float("nan"),
            "frac_detections_host_tor": location_counts["host-ToR"] / total_detections,
            "frac_detections_tor_t1": location_counts["ToR-T1"] / total_detections,
            "frac_detections_t1_t2": location_counts["T1-T2"] / total_detections,
        },
    )
    return result


def _flow_id_of_reboot(sim_result, reboot) -> Optional[int]:
    """The flow id of the storage flow that caused a reboot event."""
    for flow in sim_result.flows:
        if (
            flow.kind == "storage"
            and flow.src_host == reboot.host
            and flow.dst_host == reboot.storage_host
            and flow.has_retransmission
        ):
            return flow.flow_id
    return None
