"""Section 8.2: validating 007's per-connection diagnosis against Everflow.

Everflow-like captures are enabled on a handful of hosts; for every captured
flow that suffered retransmissions we compare the link 007 blames with the
link the capture saw dropping the packets, and we also check that the path 007
discovered matches the path the capture recorded.  The paper reports a match
in every single case.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.everflow import EverflowCapture
from repro.experiments.base import ExperimentResult
from repro.experiments.scenario import ScenarioConfig, run_scenario


def run_sec82(
    num_capture_hosts: int = 9,
    num_bad_links: int = 2,
    epochs: int = 3,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate the Section 8.2 Everflow cross-validation."""
    config = ScenarioConfig(
        num_bad_links=num_bad_links,
        drop_rate_range=(1e-3, 1e-2),
        epochs=epochs,
        seed=seed,
    )
    scenario = run_scenario(config)
    hosts = sorted(scenario.topology.hosts)[:num_capture_hosts]
    capture = EverflowCapture(enabled_hosts=hosts)

    cause_matches: List[float] = []
    path_matches: List[float] = []
    compared = 0
    for epoch_index, epoch_result in enumerate(scenario.epoch_results):
        capture.capture_epoch(epoch_result.flows)
        report = scenario.reports[epoch_index]
        for flow in epoch_result.flows:
            if not flow.has_retransmission or not capture.is_captured(flow.flow_id):
                continue
            true_link = capture.drop_link_of(flow.flow_id)
            predicted = report.cause_of_flow(flow.flow_id)
            if true_link is None or predicted is None:
                continue
            compared += 1
            cause_matches.append(1.0 if predicted == true_link else 0.0)
            # Path validation: every link 007 discovered must lie on the true path.
            contribution = next(
                (c for c in report.tally.contributions if c.flow_id == flow.flow_id),
                None,
            )
            true_path_links = set(capture.path_of(flow.flow_id).links)
            if contribution is None:
                path_matches.append(0.0)
            else:
                path_matches.append(
                    1.0 if set(contribution.links) <= true_path_links else 0.0
                )

    result = ExperimentResult(
        name="Section 8.2", description="007 vs Everflow ground truth"
    )
    result.add_point(
        {"capture_hosts": num_capture_hosts, "epochs": epochs},
        {
            "flows_compared": float(compared),
            "cause_match_rate": float(np.mean(cause_matches)) if cause_matches else float("nan"),
            "path_match_rate": float(np.mean(path_matches)) if path_matches else float("nan"),
        },
    )
    return result
