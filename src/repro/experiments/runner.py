"""Parallel experiment runner: fan sweep points and trials over worker processes.

Every ``fig*``/``sec*`` regeneration is the same shape of work — a list of
sweep points, each run for several trials with forked seeds, each trial scored
by a set of metric functions, trial scores averaged per point.  The
:class:`SweepRunner` owns that shape once: it expands ``points x trials`` into
independent tasks, runs them serially (``workers <= 1``) or across a
``multiprocessing`` pool, and reassembles the results **in task order**, so
the produced :class:`~repro.experiments.base.ExperimentResult` rows are
byte-identical regardless of the worker count.

Determinism contract
--------------------
* Trial seeds are forked as ``base_seed + TRIAL_SEED_STRIDE * trial`` — the
  exact derivation ``sweeps.average_over_trials`` has always used, so a
  ``SweepRunner(workers=1)`` reproduces the historical serial results
  bit-for-bit.
* Tasks are generated in ``(point, trial)`` order and results are reassembled
  by task index (``Pool.map`` preserves order), never by completion time.

With ``workers > 1`` the metric functions and configs must be picklable: the
metric sets in :mod:`repro.experiments.sweeps` are module-level functions for
exactly this reason.  Arbitrary lambdas still work in serial mode.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.experiments.scenario import ScenarioConfig, run_scenario

MetricFn = Callable[["ScenarioResult"], float]

#: seed stride between trials — must match the historical serial derivation in
#: ``sweeps.average_over_trials`` so forked seeds reproduce its results.
TRIAL_SEED_STRIDE = 1009


def fork_trial_seed(base_seed: int, trial: int) -> int:
    """Deterministic per-trial seed: ``base_seed + TRIAL_SEED_STRIDE * trial``."""
    return base_seed + TRIAL_SEED_STRIDE * trial


@dataclass(frozen=True)
class SweepTask:
    """One unit of work: a single trial of a single sweep point."""

    point_index: int
    trial_index: int
    config: ScenarioConfig
    metric_fns: Mapping[str, MetricFn]


def _run_task(task: SweepTask) -> Dict[str, float]:
    """Run one scenario trial and score every metric (worker entry point)."""
    result = run_scenario(task.config)
    return {name: float(fn(result)) for name, fn in task.metric_fns.items()}


class SweepRunner:
    """Runs experiment sweeps, optionally across a process pool.

    Parameters
    ----------
    workers:
        ``None`` or ``<= 1`` runs every task in-process (serial, supports
        unpicklable metric functions).  ``> 1`` fans tasks out over a
        ``multiprocessing.Pool`` of that size.
    mp_context:
        Start-method name forwarded to :func:`multiprocessing.get_context`
        (``None`` uses the platform default, ``fork`` on Linux).
    """

    def __init__(self, workers: Optional[int] = None, mp_context: Optional[str] = None) -> None:
        if workers is not None and workers < 0:
            raise ValueError("workers must be >= 0")
        self._workers = int(workers) if workers else 1
        self._mp_context = mp_context

    @property
    def workers(self) -> int:
        """Number of worker processes (1 means serial in-process execution)."""
        return self._workers

    # ------------------------------------------------------------------
    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Apply ``fn`` to every item, returning results **in item order**.

        The generic fan-out primitive behind :meth:`run_tasks` (and the
        scenario-pack runner): serial in-process when ``workers <= 1`` or
        there is at most one item, otherwise an order-preserving
        ``Pool.map`` — so results are identical at any worker count as long
        as ``fn`` is a pure function of its item.  With ``workers > 1``,
        ``fn`` and the items must be picklable (use module-level functions).
        """
        if self._workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        context = multiprocessing.get_context(self._mp_context)
        with context.Pool(processes=min(self._workers, len(items))) as pool:
            return pool.map(fn, items)

    def run_tasks(self, tasks: Sequence[SweepTask]) -> List[Dict[str, float]]:
        """Execute tasks, returning their metric dicts in task order."""
        return self.map(_run_task, tasks)

    def run_trials(
        self,
        config: ScenarioConfig,
        metric_fns: Mapping[str, MetricFn],
        trials: int = 3,
        base_seed: Optional[int] = None,
    ) -> Dict[str, float]:
        """Average each metric over ``trials`` forked-seed runs of ``config``.

        Drop-in equivalent of the serial ``sweeps.average_over_trials``:
        ``nan`` trial values are ignored; a metric that is ``nan`` in every
        trial stays ``nan``.
        """
        result = self.run_sweep([({}, config)], metric_fns, trials=trials, base_seed=base_seed)
        return result.points[0].metrics

    def run_sweep(
        self,
        points: Sequence[Tuple[Dict[str, Any], ScenarioConfig]],
        metric_fns: Mapping[str, MetricFn],
        trials: int = 3,
        base_seed: Optional[int] = None,
        name: str = "sweep",
        description: str = "",
    ) -> ExperimentResult:
        """Run every ``(parameters, config)`` sweep point for ``trials`` trials.

        All ``len(points) * trials`` tasks are fanned out together, so a pool
        is saturated even when single points have fewer trials than workers.
        """
        tasks: List[SweepTask] = []
        for index, (_, config) in enumerate(points):
            seed_origin = base_seed if base_seed is not None else config.seed
            for trial in range(trials):
                tasks.append(
                    SweepTask(
                        point_index=index,
                        trial_index=trial,
                        config=replace(config, seed=fork_trial_seed(seed_origin, trial)),
                        metric_fns=dict(metric_fns),
                    )
                )
        outcomes = self.run_tasks(tasks)

        result = ExperimentResult(name=name, description=description)
        for index, (parameters, _) in enumerate(points):
            samples: Dict[str, List[float]] = {name_: [] for name_ in metric_fns}
            for task, metrics in zip(tasks, outcomes):
                if task.point_index != index:
                    continue
                for metric_name, value in metrics.items():
                    if not np.isnan(value):
                        samples[metric_name].append(value)
            averaged = {
                metric_name: (float(np.mean(values)) if values else float("nan"))
                for metric_name, values in samples.items()
            }
            result.add_point(parameters, averaged)
        return result


def run_point_sweep(
    name: str,
    description: str,
    points: Sequence[Tuple[Dict[str, Any], ScenarioConfig]],
    metric_fns: Mapping[str, MetricFn],
    trials: int = 3,
    base_seed: Optional[int] = None,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Run a sweep through ``runner`` (a fresh serial runner when ``None``)."""
    active = runner if runner is not None else SweepRunner(workers=1)
    return active.run_sweep(
        points,
        metric_fns,
        trials=trials,
        base_seed=base_seed,
        name=name,
        description=description,
    )
