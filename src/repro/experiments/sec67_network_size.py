"""Section 6.7: effect of the network size (number of pods).

The paper reports single-failure per-connection accuracy of 98/92/91/90% for
1-4 pods for 007 (vs 94/72/79/77% for the optimization), Algorithm 1 recall
>= 98% up to 6 pods, and precision 100% at every size.  It also notes accuracy
is essentially unchanged with >= 30 failed links.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.base import ExperimentResult
from repro.experiments.runner import SweepRunner, run_point_sweep
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.sweeps import accuracy_metrics, detection_metrics
from repro.topology.elements import LinkLevel


def run_sec67(
    pod_counts: Sequence[int] = (1, 2, 3),
    trials: int = 2,
    seed: int = 0,
    include_baselines: bool = True,
    many_failures: int = 30,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Regenerate the Section 6.7 network-size study."""
    metrics = dict(accuracy_metrics(include_baselines=include_baselines))
    metrics.update(detection_metrics(include_baselines=False))
    points = [
        (
            {"pods": pods, "num_failed_links": 1},
            ScenarioConfig(
                npod=pods,
                num_bad_links=1,
                drop_rate_range=(1e-3, 1e-2),
                # A single-pod Clos carries no cross-pod traffic, so level-2
                # links see no flows; keep the injected failure on a level the
                # traffic actually exercises.
                failure_levels=(
                    (LinkLevel.LEVEL1,)
                    if pods == 1
                    else (LinkLevel.LEVEL1, LinkLevel.LEVEL2)
                ),
                seed=seed,
            ),
        )
        for pods in pod_counts
    ]
    result = run_point_sweep(
        name="Section 6.7",
        description="accuracy and detection vs number of pods",
        points=points,
        metric_fns=metrics,
        trials=trials,
        base_seed=seed,
        runner=runner,
    )

    # The ">= 30 simultaneous failures" data point of Section 6.7.
    if many_failures:
        many = run_point_sweep(
            name="Section 6.7 (many failures)",
            description="",
            points=[
                (
                    {"pods": 2, "num_failed_links": many_failures},
                    ScenarioConfig(
                        npod=2,
                        num_bad_links=many_failures,
                        drop_rate_range=(1e-3, 1e-2),
                        seed=seed,
                    ),
                )
            ],
            metric_fns=accuracy_metrics(include_baselines=include_baselines),
            trials=trials,
            base_seed=seed,
            runner=runner,
        )
        for point in many.points:
            result.add_point(point.parameters, point.metrics)
    return result
