"""Section 6.7: effect of the network size (number of pods).

The paper reports single-failure per-connection accuracy of 98/92/91/90% for
1-4 pods for 007 (vs 94/72/79/77% for the optimization), Algorithm 1 recall
>= 98% up to 6 pods, and precision 100% at every size.  It also notes accuracy
is essentially unchanged with >= 30 failed links.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.base import ExperimentResult
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.sweeps import (
    accuracy_metrics,
    average_over_trials,
    detection_metrics,
)
from repro.topology.elements import LinkLevel


def run_sec67(
    pod_counts: Sequence[int] = (1, 2, 3),
    trials: int = 2,
    seed: int = 0,
    include_baselines: bool = True,
    many_failures: int = 30,
) -> ExperimentResult:
    """Regenerate the Section 6.7 network-size study."""
    result = ExperimentResult(
        name="Section 6.7", description="accuracy and detection vs number of pods"
    )
    metrics = dict(accuracy_metrics(include_baselines=include_baselines))
    metrics.update(detection_metrics(include_baselines=False))
    for pods in pod_counts:
        config = ScenarioConfig(
            npod=pods,
            num_bad_links=1,
            drop_rate_range=(1e-3, 1e-2),
            # A single-pod Clos carries no cross-pod traffic, so level-2 links
            # see no flows; keep the injected failure on a level the traffic
            # actually exercises.
            failure_levels=(LinkLevel.LEVEL1,) if pods == 1 else (LinkLevel.LEVEL1, LinkLevel.LEVEL2),
            seed=seed,
        )
        averaged = average_over_trials(config, metrics, trials=trials, base_seed=seed)
        result.add_point({"pods": pods, "num_failed_links": 1}, averaged)

    # The ">= 30 simultaneous failures" data point of Section 6.7.
    if many_failures:
        config = ScenarioConfig(
            npod=2,
            num_bad_links=many_failures,
            drop_rate_range=(1e-3, 1e-2),
            seed=seed,
        )
        accuracy_only = accuracy_metrics(include_baselines=include_baselines)
        averaged = average_over_trials(config, accuracy_only, trials=trials, base_seed=seed)
        result.add_point({"pods": 2, "num_failed_links": many_failures}, averaged)
    return result
