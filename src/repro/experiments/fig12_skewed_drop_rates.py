"""Figure 12: Algorithm 1 under heavily skewed drop rates across failures.

At least one failed link drops 10-100% of packets while the others drop only
0.01-0.1% — the regime past work reported as hard.  The paper: precision stays
high, recall degrades as the dominant failure inflates the detection
threshold (it would be near 100% if the top-k links were simply selected).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.base import ExperimentResult
from repro.experiments.runner import SweepRunner, run_point_sweep
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.sweeps import detection_metrics
from repro.metrics.evaluation import top_k_recall

DEFAULT_FAILED_LINK_COUNTS = (2, 6, 10, 14)


def run_fig12(
    failed_link_counts: Sequence[int] = DEFAULT_FAILED_LINK_COUNTS,
    trials: int = 2,
    seed: int = 0,
    include_baselines: bool = True,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Regenerate Figure 12 (skewed drop rates, multiple failures)."""
    metrics = dict(detection_metrics(include_baselines=include_baselines))
    metrics["topk_recall_007"] = _topk_recall_metric
    points = [
        (
            {"num_failed_links": count},
            ScenarioConfig(failure_kind="skewed", num_bad_links=count, seed=seed),
        )
        for count in failed_link_counts
    ]
    return run_point_sweep(
        name="Figure 12",
        description="Algorithm 1 precision/recall, heavily skewed drop rates",
        points=points,
        metric_fns=metrics,
        trials=trials,
        base_seed=seed,
        runner=runner,
    )


def _topk_recall_metric(scenario_result) -> float:
    """Recall if the top-k voted links were selected instead of thresholding."""
    report = scenario_result.reports[0]
    ranked = [link for link, _ in report.ranked_links]
    return top_k_recall(ranked, scenario_result.failure_scenario.bad_links)
