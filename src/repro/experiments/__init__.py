"""Experiment harness: one module per table/figure of the paper's evaluation.

Every module exposes a ``run_*`` function returning an
:class:`~repro.experiments.base.ExperimentResult` whose rows mirror the
series/columns the paper reports.  The ``benchmarks/`` directory contains one
pytest-benchmark target per experiment that runs a scaled-down configuration
and prints the regenerated rows.
"""

from repro.experiments.base import ExperimentPoint, ExperimentResult
from repro.experiments.scenario import ScenarioConfig, ScenarioResult, run_scenario

__all__ = [
    "ExperimentPoint",
    "ExperimentResult",
    "ScenarioConfig",
    "ScenarioResult",
    "run_scenario",
]
