"""Section 6.6 / 8.3 companion: 007 against *time-varying* failures.

The paper argues 007's votes stay meaningful while the failure set changes
under it — links flap, congestion comes in bursts, and detections must both
appear quickly and *disappear* once the transient clears.  This study scripts
a link flap (and a congestion burst) onto an otherwise clean fabric and
sweeps the flap drop rate, reporting the time-aware metrics: mean per-epoch
precision/recall, time to detection, the fraction of transient failures
caught inside their active window, and the false-alarm rate after clearing.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.base import ExperimentResult
from repro.experiments.runner import SweepRunner, run_point_sweep
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.sweeps import dynamic_metrics
from repro.netsim.script import ScenarioScript
from repro.topology.elements import LinkLevel

DEFAULT_DROP_RATES = (1e-3, 5e-3, 1e-2)


def flap_config(
    drop_rate: float,
    epochs: int = 8,
    flap_start: int = 2,
    flap_duration: int = 3,
    seed: int = 0,
    with_burst: bool = False,
) -> ScenarioConfig:
    """A clean fabric with one scripted ToR-T1 flap (and optionally a burst)."""
    script = ScenarioScript().flap(
        start=flap_start,
        duration=flap_duration,
        drop_rate=drop_rate,
        level=LinkLevel.LEVEL1,
    )
    if with_burst:
        script.burst(
            start=flap_start + flap_duration + 1,
            duration=2,
            level=LinkLevel.LEVEL2,
            num_links=2,
            drop_rate=drop_rate,
        )
    return ScenarioConfig(
        failure_kind="none",
        epochs=epochs,
        seed=seed,
        script=script,
    )


def run_sec66(
    drop_rates: Sequence[float] = DEFAULT_DROP_RATES,
    epochs: int = 8,
    flap_duration: int = 3,
    trials: int = 2,
    seed: int = 0,
    with_burst: bool = False,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Regenerate the transient-failure (link flap) study."""
    points = [
        (
            {"flap_drop_rate": rate, "flap_epochs": flap_duration},
            flap_config(
                rate,
                epochs=epochs,
                flap_duration=flap_duration,
                seed=seed,
                with_burst=with_burst,
            ),
        )
        for rate in drop_rates
    ]
    return run_point_sweep(
        name="Section 6.6 (transient failures)",
        description="time-aware detection metrics for a scripted link flap",
        points=points,
        metric_fns=dynamic_metrics(),
        trials=trials,
        base_seed=seed,
        runner=runner,
    )
