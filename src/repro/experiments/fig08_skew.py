"""Figure 8: accuracy under heavily skewed traffic.

25% of the ToRs receive 80% of the flows (Section 6.5).  The optimization's
constraints thin out on the cold part of the network, so its accuracy drops,
while 007 keeps finding the per-flow cause with high probability.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.base import ExperimentResult
from repro.experiments.runner import SweepRunner, run_point_sweep
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.sweeps import accuracy_metrics

DEFAULT_DROP_RATES = (1e-4, 5e-4, 1e-3, 5e-3, 1e-2)
DEFAULT_FAILED_LINK_COUNTS = (2, 6, 10, 14)


def _skewed_config(seed: int, **overrides) -> ScenarioConfig:
    base = dict(
        traffic="skewed",
        num_hot_tors=5,  # 25% of the 20 ToRs in the default 2-pod topology
        hot_fraction=0.8,
        seed=seed,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def run_fig08_single(
    drop_rates: Sequence[float] = DEFAULT_DROP_RATES,
    trials: int = 3,
    seed: int = 0,
    include_baselines: bool = True,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Panel (a): single failure under skewed traffic."""
    points = [
        (
            {"drop_rate": rate},
            _skewed_config(seed, num_bad_links=1, drop_rate_range=(rate, rate)),
        )
        for rate in drop_rates
    ]
    return run_point_sweep(
        name="Figure 8a",
        description="accuracy vs drop rate, skewed traffic",
        points=points,
        metric_fns=accuracy_metrics(include_baselines=include_baselines),
        trials=trials,
        base_seed=seed,
        runner=runner,
    )


def run_fig08_multiple(
    failed_link_counts: Sequence[int] = DEFAULT_FAILED_LINK_COUNTS,
    trials: int = 3,
    seed: int = 0,
    include_baselines: bool = True,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Panel (b): multiple failures under skewed traffic."""
    points = [
        (
            {"num_failed_links": count},
            _skewed_config(seed, num_bad_links=count, drop_rate_range=(1e-4, 1e-2)),
        )
        for count in failed_link_counts
    ]
    return run_point_sweep(
        name="Figure 8b",
        description="accuracy vs #failures, skewed traffic",
        points=points,
        metric_fns=accuracy_metrics(include_baselines=include_baselines),
        trials=trials,
        base_seed=seed,
        runner=runner,
    )


def run_fig08(
    trials: int = 3,
    seed: int = 0,
    include_baselines: bool = True,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Both panels merged."""
    merged = ExperimentResult(name="Figure 8", description="skewed traffic")
    for sub in (
        run_fig08_single(
            trials=trials, seed=seed, include_baselines=include_baselines, runner=runner
        ),
        run_fig08_multiple(
            trials=trials, seed=seed, include_baselines=include_baselines, runner=runner
        ),
    ):
        for point in sub.points:
            merged.add_point({"panel": sub.name, **point.parameters}, point.metrics)
    return merged
