"""Figure 7: accuracy when hosts open a random number of connections per epoch.

Hosts draw their per-epoch connection count uniformly from (10, 60) instead of
the fixed 60 used elsewhere; fewer connections means less evidence, which
hurts the under-constrained optimization more than 007.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.experiments.base import ExperimentResult
from repro.experiments.runner import SweepRunner, run_point_sweep
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.sweeps import accuracy_metrics

DEFAULT_DROP_RATES = (1e-4, 5e-4, 1e-3, 5e-3, 1e-2)
DEFAULT_FAILED_LINK_COUNTS = (2, 6, 10, 14)
DEFAULT_CONNECTION_RANGE: Tuple[int, int] = (10, 60)


def run_fig07_single(
    drop_rates: Sequence[float] = DEFAULT_DROP_RATES,
    connection_range: Tuple[int, int] = DEFAULT_CONNECTION_RANGE,
    trials: int = 3,
    seed: int = 0,
    include_baselines: bool = True,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Panel (a): single failure, random connection counts."""
    points = [
        (
            {"drop_rate": rate},
            ScenarioConfig(
                num_bad_links=1,
                drop_rate_range=(rate, rate),
                connections_per_host=connection_range,
                seed=seed,
            ),
        )
        for rate in drop_rates
    ]
    return run_point_sweep(
        name="Figure 7a",
        description="accuracy vs drop rate, random #connections per host",
        points=points,
        metric_fns=accuracy_metrics(include_baselines=include_baselines),
        trials=trials,
        base_seed=seed,
        runner=runner,
    )


def run_fig07_multiple(
    failed_link_counts: Sequence[int] = DEFAULT_FAILED_LINK_COUNTS,
    connection_range: Tuple[int, int] = DEFAULT_CONNECTION_RANGE,
    trials: int = 3,
    seed: int = 0,
    include_baselines: bool = True,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Panel (b): multiple failures, random connection counts."""
    points = [
        (
            {"num_failed_links": count},
            ScenarioConfig(
                num_bad_links=count,
                drop_rate_range=(1e-4, 1e-2),
                connections_per_host=connection_range,
                seed=seed,
            ),
        )
        for count in failed_link_counts
    ]
    return run_point_sweep(
        name="Figure 7b",
        description="accuracy vs #failures, random #connections per host",
        points=points,
        metric_fns=accuracy_metrics(include_baselines=include_baselines),
        trials=trials,
        base_seed=seed,
        runner=runner,
    )


def run_fig07(
    trials: int = 3,
    seed: int = 0,
    include_baselines: bool = True,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Both panels merged."""
    merged = ExperimentResult(
        name="Figure 7", description="random #connections per host"
    )
    for sub in (
        run_fig07_single(
            trials=trials, seed=seed, include_baselines=include_baselines, runner=runner
        ),
        run_fig07_multiple(
            trials=trials, seed=seed, include_baselines=include_baselines, runner=runner
        ),
    ):
        for point in sub.points:
            merged.add_point({"panel": sub.name, **point.parameters}, point.metrics)
    return merged
