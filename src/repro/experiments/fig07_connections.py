"""Figure 7: accuracy when hosts open a random number of connections per epoch.

Hosts draw their per-epoch connection count uniformly from (10, 60) instead of
the fixed 60 used elsewhere; fewer connections means less evidence, which
hurts the under-constrained optimization more than 007.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.experiments.base import ExperimentResult
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.sweeps import accuracy_metrics, average_over_trials

DEFAULT_DROP_RATES = (1e-4, 5e-4, 1e-3, 5e-3, 1e-2)
DEFAULT_FAILED_LINK_COUNTS = (2, 6, 10, 14)
DEFAULT_CONNECTION_RANGE: Tuple[int, int] = (10, 60)


def run_fig07_single(
    drop_rates: Sequence[float] = DEFAULT_DROP_RATES,
    connection_range: Tuple[int, int] = DEFAULT_CONNECTION_RANGE,
    trials: int = 3,
    seed: int = 0,
    include_baselines: bool = True,
) -> ExperimentResult:
    """Panel (a): single failure, random connection counts."""
    result = ExperimentResult(
        name="Figure 7a",
        description="accuracy vs drop rate, random #connections per host",
    )
    metrics = accuracy_metrics(include_baselines=include_baselines)
    for rate in drop_rates:
        config = ScenarioConfig(
            num_bad_links=1,
            drop_rate_range=(rate, rate),
            connections_per_host=connection_range,
            seed=seed,
        )
        averaged = average_over_trials(config, metrics, trials=trials, base_seed=seed)
        result.add_point({"drop_rate": rate}, averaged)
    return result


def run_fig07_multiple(
    failed_link_counts: Sequence[int] = DEFAULT_FAILED_LINK_COUNTS,
    connection_range: Tuple[int, int] = DEFAULT_CONNECTION_RANGE,
    trials: int = 3,
    seed: int = 0,
    include_baselines: bool = True,
) -> ExperimentResult:
    """Panel (b): multiple failures, random connection counts."""
    result = ExperimentResult(
        name="Figure 7b",
        description="accuracy vs #failures, random #connections per host",
    )
    metrics = accuracy_metrics(include_baselines=include_baselines)
    for count in failed_link_counts:
        config = ScenarioConfig(
            num_bad_links=count,
            drop_rate_range=(1e-4, 1e-2),
            connections_per_host=connection_range,
            seed=seed,
        )
        averaged = average_over_trials(config, metrics, trials=trials, base_seed=seed)
        result.add_point({"num_failed_links": count}, averaged)
    return result


def run_fig07(trials: int = 3, seed: int = 0, include_baselines: bool = True) -> ExperimentResult:
    """Both panels merged."""
    merged = ExperimentResult(
        name="Figure 7", description="random #connections per host"
    )
    for sub in (
        run_fig07_single(trials=trials, seed=seed, include_baselines=include_baselines),
        run_fig07_multiple(trials=trials, seed=seed, include_baselines=include_baselines),
    ):
        for point in sub.points:
            merged.add_point({"panel": sub.name, **point.parameters}, point.metrics)
    return merged
