"""Figure 11: impact of the failed link's location on Algorithm 1.

The same drop-rate sweep is run with the failure placed on each of the four
directed fabric locations the paper distinguishes: ToR->T1, T1->T2, T2->T1 and
T1->ToR.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.experiments.base import ExperimentResult
from repro.experiments.runner import SweepRunner, run_point_sweep
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.sweeps import detection_metrics
from repro.topology.elements import LinkLevel

DEFAULT_DROP_RATES = (5e-4, 1e-3, 5e-3, 1e-2)

#: (label, link level, downward?) for the four locations of Figure 11.
LOCATIONS: Tuple[Tuple[str, LinkLevel, bool], ...] = (
    ("ToR-T1", LinkLevel.LEVEL1, False),
    ("T1-T2", LinkLevel.LEVEL2, False),
    ("T2-T1", LinkLevel.LEVEL2, True),
    ("T1-ToR", LinkLevel.LEVEL1, True),
)


def run_fig11(
    drop_rates: Sequence[float] = DEFAULT_DROP_RATES,
    trials: int = 2,
    seed: int = 0,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Regenerate Figure 11 (failure location vs detection precision/recall)."""
    points = [
        (
            {"location": label, "drop_rate": rate},
            ScenarioConfig(
                failure_kind="level",
                failure_level=level,
                failure_downward=downward,
                num_bad_links=1,
                drop_rate_range=(rate, rate),
                seed=seed,
            ),
        )
        for label, level, downward in LOCATIONS
        for rate in drop_rates
    ]
    return run_point_sweep(
        name="Figure 11",
        description="Algorithm 1 precision/recall by failed-link location",
        points=points,
        metric_fns=detection_metrics(include_baselines=False),
        trials=trials,
        base_seed=seed,
        runner=runner,
    )
