"""Figure 4: Algorithm 1 precision/recall vs number of failed links
(Theorem 2 regime), compared against the integer and binary programs."""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.experiments.base import ExperimentResult
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.sweeps import average_over_trials, detection_metrics

DEFAULT_FAILED_LINK_COUNTS = (2, 6, 10, 14)


def run_fig04(
    failed_link_counts: Sequence[int] = DEFAULT_FAILED_LINK_COUNTS,
    trials: int = 3,
    seed: int = 0,
    include_baselines: bool = True,
) -> ExperimentResult:
    """Regenerate Figure 4 (detection precision/recall vs number of failed links)."""
    base = ScenarioConfig(
        drop_rate_range=(5e-4, 1e-2),
        seed=seed,
    )
    result = ExperimentResult(
        name="Figure 4",
        description="Algorithm 1 precision/recall vs #failed links (Theorem 2 holds)",
    )
    metrics = detection_metrics(include_baselines=include_baselines)
    for count in failed_link_counts:
        config = replace(base, num_bad_links=count)
        averaged = average_over_trials(config, metrics, trials=trials, base_seed=seed)
        result.add_point({"num_failed_links": count}, averaged)
    return result
