"""Figure 9: a single hot ToR absorbing a large share of all flows.

The skew fraction (share of flows sinking at the hot ToR) sweeps from 10% to
70% while the number of simultaneous failures varies.  The paper finds 007
tolerates up to 50% skew with negligible degradation; above that accuracy
suffers when many links fail at once.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.base import ExperimentResult
from repro.experiments.runner import SweepRunner, run_point_sweep
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.sweeps import accuracy_metrics

DEFAULT_SKEWS = (0.1, 0.3, 0.5, 0.7)
DEFAULT_FAILED_LINK_COUNTS = (1, 5, 10, 15)


def run_fig09(
    skews: Sequence[float] = DEFAULT_SKEWS,
    failed_link_counts: Sequence[int] = DEFAULT_FAILED_LINK_COUNTS,
    trials: int = 2,
    seed: int = 0,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Regenerate Figure 9 (hot-ToR skew sweep vs number of failures)."""
    points = [
        (
            {"skew": skew, "num_failed_links": count},
            ScenarioConfig(
                traffic="hot_tor",
                hot_tor_skew=skew,
                num_bad_links=count,
                drop_rate_range=(1e-3, 1e-2),
                seed=seed,
            ),
        )
        for skew in skews
        for count in failed_link_counts
    ]
    return run_point_sweep(
        name="Figure 9",
        description="accuracy under a hot ToR sink",
        points=points,
        metric_fns=accuracy_metrics(include_baselines=False),
        trials=trials,
        base_seed=seed,
        runner=runner,
    )
