"""Ablation studies for the design choices called out in DESIGN.md.

* vote value: the paper's ``1/h`` votes vs. uniform unit votes;
* Algorithm 1's detection threshold (the paper picked 1% via a sweep);
* Algorithm 1's vote re-adjustment step on/off (the paper credits it with a
  ~5% false-positive reduction).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.core.blame import BlameConfig
from repro.experiments.base import ExperimentResult
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.sweeps import average_over_trials, detection_metrics, accuracy_metrics


def run_vote_policy_ablation(
    trials: int = 3, seed: int = 0, num_bad_links: int = 6
) -> ExperimentResult:
    """1/h votes vs unit votes."""
    result = ExperimentResult(
        name="Ablation: vote value", description="1/h votes vs unit votes"
    )
    metrics = {**accuracy_metrics(False), **detection_metrics(False)}
    for policy in ("inverse_hops", "unit"):
        config = ScenarioConfig(
            num_bad_links=num_bad_links,
            drop_rate_range=(5e-4, 1e-2),
            vote_policy=policy,
            seed=seed,
        )
        averaged = average_over_trials(config, metrics, trials=trials, base_seed=seed)
        result.add_point({"vote_policy": policy}, averaged)
    return result


def run_threshold_ablation(
    thresholds: Sequence[float] = (0.002, 0.005, 0.01, 0.02, 0.05),
    trials: int = 3,
    seed: int = 0,
    num_bad_links: int = 6,
) -> ExperimentResult:
    """Sweep Algorithm 1's detection threshold (the paper's parameter sweep)."""
    result = ExperimentResult(
        name="Ablation: detection threshold",
        description="Algorithm 1 threshold (fraction of total votes)",
    )
    metrics = detection_metrics(False)
    for threshold in thresholds:
        config = ScenarioConfig(
            num_bad_links=num_bad_links,
            drop_rate_range=(5e-4, 1e-2),
            blame=BlameConfig(threshold_fraction=threshold),
            seed=seed,
        )
        averaged = average_over_trials(config, metrics, trials=trials, base_seed=seed)
        result.add_point({"threshold_fraction": threshold}, averaged)
    return result


def run_adjustment_ablation(
    trials: int = 3, seed: int = 0, num_bad_links: int = 6
) -> ExperimentResult:
    """Algorithm 1 with and without the vote re-adjustment step."""
    result = ExperimentResult(
        name="Ablation: vote adjustment",
        description="Algorithm 1 adjustment step on/off",
    )
    metrics = detection_metrics(False)
    for adjustment in ("paths", "none"):
        config = ScenarioConfig(
            num_bad_links=num_bad_links,
            drop_rate_range=(5e-4, 1e-2),
            blame=BlameConfig(adjustment=adjustment),
            seed=seed,
        )
        averaged = average_over_trials(config, metrics, trials=trials, base_seed=seed)
        result.add_point({"adjustment": adjustment}, averaged)
    return result


def run_all_ablations(trials: int = 2, seed: int = 0) -> ExperimentResult:
    """All three ablations merged into a single table."""
    merged = ExperimentResult(name="Ablations", description="design-choice ablations")
    for sub in (
        run_vote_policy_ablation(trials=trials, seed=seed),
        run_threshold_ablation(trials=trials, seed=seed),
        run_adjustment_ablation(trials=trials, seed=seed),
    ):
        for point in sub.points:
            merged.add_point({"study": sub.name, **point.parameters}, point.metrics)
    return merged
