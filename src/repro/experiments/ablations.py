"""Ablation studies for the design choices called out in DESIGN.md.

* vote value: the paper's ``1/h`` votes vs. uniform unit votes;
* Algorithm 1's detection threshold (the paper picked 1% via a sweep);
* Algorithm 1's vote re-adjustment step on/off (the paper credits it with a
  ~5% false-positive reduction).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.blame import BlameConfig
from repro.experiments.base import ExperimentResult
from repro.experiments.runner import SweepRunner, run_point_sweep
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.sweeps import accuracy_metrics, detection_metrics


def run_vote_policy_ablation(
    trials: int = 3,
    seed: int = 0,
    num_bad_links: int = 6,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """1/h votes vs unit votes."""
    points = [
        (
            {"vote_policy": policy},
            ScenarioConfig(
                num_bad_links=num_bad_links,
                drop_rate_range=(5e-4, 1e-2),
                vote_policy=policy,
                seed=seed,
            ),
        )
        for policy in ("inverse_hops", "unit")
    ]
    return run_point_sweep(
        name="Ablation: vote value",
        description="1/h votes vs unit votes",
        points=points,
        metric_fns={**accuracy_metrics(False), **detection_metrics(False)},
        trials=trials,
        base_seed=seed,
        runner=runner,
    )


def run_threshold_ablation(
    thresholds: Sequence[float] = (0.002, 0.005, 0.01, 0.02, 0.05),
    trials: int = 3,
    seed: int = 0,
    num_bad_links: int = 6,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Sweep Algorithm 1's detection threshold (the paper's parameter sweep)."""
    points = [
        (
            {"threshold_fraction": threshold},
            ScenarioConfig(
                num_bad_links=num_bad_links,
                drop_rate_range=(5e-4, 1e-2),
                blame=BlameConfig(threshold_fraction=threshold),
                seed=seed,
            ),
        )
        for threshold in thresholds
    ]
    return run_point_sweep(
        name="Ablation: detection threshold",
        description="Algorithm 1 threshold (fraction of total votes)",
        points=points,
        metric_fns=detection_metrics(False),
        trials=trials,
        base_seed=seed,
        runner=runner,
    )


def run_adjustment_ablation(
    trials: int = 3,
    seed: int = 0,
    num_bad_links: int = 6,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Algorithm 1 with and without the vote re-adjustment step."""
    points = [
        (
            {"adjustment": adjustment},
            ScenarioConfig(
                num_bad_links=num_bad_links,
                drop_rate_range=(5e-4, 1e-2),
                blame=BlameConfig(adjustment=adjustment),
                seed=seed,
            ),
        )
        for adjustment in ("paths", "none")
    ]
    return run_point_sweep(
        name="Ablation: vote adjustment",
        description="Algorithm 1 adjustment step on/off",
        points=points,
        metric_fns=detection_metrics(False),
        trials=trials,
        base_seed=seed,
        runner=runner,
    )


def run_all_ablations(
    trials: int = 2, seed: int = 0, runner: Optional[SweepRunner] = None
) -> ExperimentResult:
    """All three ablations merged into a single table."""
    merged = ExperimentResult(name="Ablations", description="design-choice ablations")
    for sub in (
        run_vote_policy_ablation(trials=trials, seed=seed, runner=runner),
        run_threshold_ablation(trials=trials, seed=seed, runner=runner),
        run_adjustment_ablation(trials=trials, seed=seed, runner=runner),
    ):
        for point in sub.points:
            merged.add_point({"study": sub.name, **point.parameters}, point.metrics)
    return merged
