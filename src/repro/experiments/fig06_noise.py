"""Figure 6: impact of noise (good-link drop rate) on per-connection accuracy.

The noise level — the drop rate of *good* links — is swept upward while one
(panel a) or five (panel b) links carry genuine failures.  The paper's
finding: 007 is barely affected, while the optimization's accuracy becomes
erratic (large confidence intervals).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.base import ExperimentResult
from repro.experiments.runner import SweepRunner, run_point_sweep
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.sweeps import accuracy_metrics

DEFAULT_NOISE_LEVELS = (1e-6, 1e-5, 5e-5, 1e-4)


def run_fig06(
    noise_levels: Sequence[float] = DEFAULT_NOISE_LEVELS,
    failed_link_counts: Sequence[int] = (1, 5),
    trials: int = 3,
    seed: int = 0,
    include_baselines: bool = True,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Regenerate Figure 6 (accuracy vs noise level, single and multiple failures)."""
    points = [
        (
            {"num_failed_links": count, "noise_drop_rate": noise},
            ScenarioConfig(
                num_bad_links=count,
                drop_rate_range=(1e-3, 1e-2),
                noise_range=(0.0, noise),
                seed=seed,
            ),
        )
        for count in failed_link_counts
        for noise in noise_levels
    ]
    return run_point_sweep(
        name="Figure 6",
        description="accuracy vs good-link (noise) drop rate",
        points=points,
        metric_fns=accuracy_metrics(include_baselines=include_baselines),
        trials=trials,
        base_seed=seed,
        runner=runner,
    )
