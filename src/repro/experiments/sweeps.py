"""Sweep helpers shared by the per-figure experiment modules.

The metric functions are deliberately module-level ``def``s (not lambdas):
:class:`~repro.experiments.runner.SweepRunner` pickles them into worker
processes when experiments run with ``workers > 1``.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional

import numpy as np

from repro.experiments.runner import SweepRunner
from repro.experiments.scenario import ScenarioConfig, ScenarioResult

MetricFn = Callable[[ScenarioResult], float]


# ----------------------------------------------------------------------
# picklable metric functions
# ----------------------------------------------------------------------
def metric_accuracy_007(result: ScenarioResult) -> float:
    """Per-connection accuracy of 007."""
    return result.accuracy_007()


def metric_precision_007(result: ScenarioResult) -> float:
    """Algorithm 1 detection precision."""
    return result.detection_007().precision


def metric_recall_007(result: ScenarioResult) -> float:
    """Algorithm 1 detection recall."""
    return result.detection_007().recall


def metric_accuracy_integer(result: ScenarioResult) -> float:
    """Per-connection accuracy of the integer program baseline."""
    return result.accuracy_integer_program(exact=False)


def metric_precision_integer(result: ScenarioResult) -> float:
    """Detection precision of the integer program baseline."""
    return result.integer_program_detection(exact=False).precision


def metric_recall_integer(result: ScenarioResult) -> float:
    """Detection recall of the integer program baseline."""
    return result.integer_program_detection(exact=False).recall


def metric_precision_binary(result: ScenarioResult) -> float:
    """Detection precision of the binary program baseline."""
    return result.binary_program_detection(exact=False).precision


def metric_recall_binary(result: ScenarioResult) -> float:
    """Detection recall of the binary program baseline."""
    return result.binary_program_detection(exact=False).recall


# ----------------------------------------------------------------------
# time-aware metrics (dynamic scenarios with per-epoch ground truth)
# ----------------------------------------------------------------------
def metric_mean_epoch_precision_007(result: ScenarioResult) -> float:
    """Mean per-epoch detection precision across the whole timeline."""
    scores = result.per_epoch_detection_007()
    return float(np.mean([s.precision for s in scores])) if scores else float("nan")


def metric_mean_epoch_recall_007(result: ScenarioResult) -> float:
    """Mean per-epoch detection recall across the whole timeline."""
    scores = result.per_epoch_detection_007()
    return float(np.mean([s.recall for s in scores])) if scores else float("nan")


def metric_time_to_detection_007(result: ScenarioResult) -> float:
    """Mean epochs from failure onset to first in-window detection."""
    return result.mean_time_to_detection_007()


def metric_false_alarm_rate_007(result: ScenarioResult) -> float:
    """Rate of stale detections after failures cleared."""
    return result.false_alarm_rate_007()


def metric_detected_fraction_007(result: ScenarioResult) -> float:
    """Fraction of ever-bad links detected during at least one of their bad epochs."""
    latencies = result.time_to_detection_007()
    if not latencies:
        return float("nan")
    detected = sum(1 for latency in latencies.values() if latency is not None)
    return detected / len(latencies)


# ----------------------------------------------------------------------
# aggregate metrics (the MultiEpochAggregator / ReportSink view)
# ----------------------------------------------------------------------
def metric_mean_detections_per_epoch(result: ScenarioResult) -> float:
    """Mean links flagged per epoch (Section 8.3's operator-facing number)."""
    return result.aggregate().detections_per_epoch()[0]


def metric_false_alarm_fraction(result: ScenarioResult) -> float:
    """Share of detection events naming a link not bad that epoch (truth-aware)."""
    return result.aggregate().false_alarm_fraction()


def aggregate_metrics() -> Dict[str, MetricFn]:
    """Fleet-health metrics computed through the multi-epoch aggregator.

    Module-level (picklable) like every other metric set, so sweeps over the
    aggregator view parallelize across workers too.
    """
    return {
        "detections_per_epoch": metric_mean_detections_per_epoch,
        "false_alarm_fraction": metric_false_alarm_fraction,
    }


# ----------------------------------------------------------------------
def average_over_trials(
    config: ScenarioConfig,
    metric_fns: Mapping[str, MetricFn],
    trials: int = 3,
    base_seed: Optional[int] = None,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, float]:
    """Run ``config`` ``trials`` times (different seeds) and average each metric.

    ``nan`` values (e.g. accuracy when no flow crossed a failed link in a
    trial) are ignored in the average; a metric that is ``nan`` in every trial
    stays ``nan``.  Pass a :class:`SweepRunner` to fan the trials out over a
    worker pool; the default serial runner produces identical results.
    """
    active = runner if runner is not None else SweepRunner(workers=1)
    return active.run_trials(config, metric_fns, trials=trials, base_seed=base_seed)


def standard_metrics(include_baselines: bool = True) -> Dict[str, MetricFn]:
    """The metric set most figures report: accuracy + detection for 007 and baselines."""
    metrics: Dict[str, MetricFn] = {
        "accuracy_007": metric_accuracy_007,
        "precision_007": metric_precision_007,
        "recall_007": metric_recall_007,
    }
    if include_baselines:
        metrics.update(
            {
                "accuracy_integer": metric_accuracy_integer,
                "precision_integer": metric_precision_integer,
                "recall_integer": metric_recall_integer,
                "precision_binary": metric_precision_binary,
                "recall_binary": metric_recall_binary,
            }
        )
    return metrics


def dynamic_metrics() -> Dict[str, MetricFn]:
    """The time-aware metric set for dynamic (scripted) scenarios."""
    return {
        "mean_epoch_precision_007": metric_mean_epoch_precision_007,
        "mean_epoch_recall_007": metric_mean_epoch_recall_007,
        "time_to_detection_007": metric_time_to_detection_007,
        "false_alarm_rate_007": metric_false_alarm_rate_007,
        "detected_fraction_007": metric_detected_fraction_007,
    }


def accuracy_metrics(include_baselines: bool = True) -> Dict[str, MetricFn]:
    """Just the per-connection accuracy metrics (Figures 3, 5-9)."""
    metrics: Dict[str, MetricFn] = {"accuracy_007": metric_accuracy_007}
    if include_baselines:
        metrics["accuracy_integer"] = metric_accuracy_integer
    return metrics


def detection_metrics(include_baselines: bool = True) -> Dict[str, MetricFn]:
    """Just the Algorithm 1 precision/recall metrics (Figures 4, 10-12)."""
    metrics: Dict[str, MetricFn] = {
        "precision_007": metric_precision_007,
        "recall_007": metric_recall_007,
    }
    if include_baselines:
        metrics.update(
            {
                "precision_integer": metric_precision_integer,
                "recall_integer": metric_recall_integer,
                "precision_binary": metric_precision_binary,
                "recall_binary": metric_recall_binary,
            }
        )
    return metrics
