"""Sweep helpers shared by the per-figure experiment modules."""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Mapping, Optional

import numpy as np

from repro.experiments.scenario import ScenarioConfig, ScenarioResult, run_scenario

MetricFn = Callable[[ScenarioResult], float]


def average_over_trials(
    config: ScenarioConfig,
    metric_fns: Mapping[str, MetricFn],
    trials: int = 3,
    base_seed: Optional[int] = None,
) -> Dict[str, float]:
    """Run ``config`` ``trials`` times (different seeds) and average each metric.

    ``nan`` values (e.g. accuracy when no flow crossed a failed link in a
    trial) are ignored in the average; a metric that is ``nan`` in every trial
    stays ``nan``.
    """
    samples: Dict[str, List[float]] = {name: [] for name in metric_fns}
    for trial in range(trials):
        seed = (base_seed if base_seed is not None else config.seed) + 1009 * trial
        result = run_scenario(replace(config, seed=seed))
        for name, fn in metric_fns.items():
            value = float(fn(result))
            if not np.isnan(value):
                samples[name].append(value)
    return {
        name: (float(np.mean(values)) if values else float("nan"))
        for name, values in samples.items()
    }


def standard_metrics(include_baselines: bool = True) -> Dict[str, MetricFn]:
    """The metric set most figures report: accuracy + detection for 007 and baselines."""
    metrics: Dict[str, MetricFn] = {
        "accuracy_007": lambda r: r.accuracy_007(),
        "precision_007": lambda r: r.detection_007().precision,
        "recall_007": lambda r: r.detection_007().recall,
    }
    if include_baselines:
        metrics.update(
            {
                "accuracy_integer": lambda r: r.accuracy_integer_program(exact=False),
                "precision_integer": lambda r: r.integer_program_detection(exact=False).precision,
                "recall_integer": lambda r: r.integer_program_detection(exact=False).recall,
                "precision_binary": lambda r: r.binary_program_detection(exact=False).precision,
                "recall_binary": lambda r: r.binary_program_detection(exact=False).recall,
            }
        )
    return metrics


def accuracy_metrics(include_baselines: bool = True) -> Dict[str, MetricFn]:
    """Just the per-connection accuracy metrics (Figures 3, 5-9)."""
    metrics: Dict[str, MetricFn] = {"accuracy_007": lambda r: r.accuracy_007()}
    if include_baselines:
        metrics["accuracy_integer"] = lambda r: r.accuracy_integer_program(exact=False)
    return metrics


def detection_metrics(include_baselines: bool = True) -> Dict[str, MetricFn]:
    """Just the Algorithm 1 precision/recall metrics (Figures 4, 10-12)."""
    metrics: Dict[str, MetricFn] = {
        "precision_007": lambda r: r.detection_007().precision,
        "recall_007": lambda r: r.detection_007().recall,
    }
    if include_baselines:
        metrics.update(
            {
                "precision_integer": lambda r: r.integer_program_detection(exact=False).precision,
                "recall_integer": lambda r: r.integer_program_detection(exact=False).recall,
                "precision_binary": lambda r: r.binary_program_detection(exact=False).precision,
                "recall_binary": lambda r: r.binary_program_detection(exact=False).recall,
            }
        )
    return metrics
