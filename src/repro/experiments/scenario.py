"""The shared scenario runner used by (almost) every experiment.

A *scenario* is: a Clos topology, a traffic pattern, an injected failure set,
and a number of epochs of the full 007 pipeline.  The runner returns both the
simulator ground truth and 007's per-epoch reports, and knows how to score
007 and the optimization baselines against that ground truth the way the
paper's evaluation section does.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Dict, Iterator, List, Literal, Optional, Sequence, Tuple

import numpy as np

from repro.api.checkpoint import blame_from_dict, blame_to_dict
from repro.baselines.binary_program import solve_binary_program
from repro.baselines.integer_program import IntegerProgramResult, solve_integer_program
from repro.core.analysis import EngineKind, EpochReport
from repro.core.blame import BlameConfig
from repro.core.pipeline import SystemConfig, Zero07System
from repro.core.votes import VotePolicy
from repro.metrics.evaluation import (
    DetectionScore,
    detection_latencies,
    detection_precision_recall,
    false_alarm_rate_after_clear,
    mean_time_to_detection,
    per_epoch_detection,
    per_flow_accuracy,
    time_to_detection,
)
from repro.netsim.failures import FailureInjector, FailureScenario
from repro.netsim.links import LinkStateTable
from repro.netsim.script import ScenarioScript, pair_from_json, pair_to_json
from repro.netsim.simulator import EpochResult, SimulationConfig
from repro.netsim.traffic import (
    HotTorTraffic,
    SkewedTraffic,
    TrafficGenerator,
    UniformTraffic,
)
from repro.routing.routing_matrix import build_routing_matrix
from repro.topology.clos import ClosParameters, ClosTopology
from repro.topology.elements import DirectedLink, LinkLevel
from repro.util.rng import spawn_rng

TrafficKind = Literal["uniform", "skewed", "hot_tor"]
FailureKind = Literal["random", "skewed", "level", "none"]


@dataclass
class ScenarioConfig:
    """Everything needed to run one 007 scenario end to end."""

    # topology -----------------------------------------------------------
    npod: int = 2
    n0: int = 10
    n1: int = 4
    n2: int = 4
    hosts_per_tor: int = 3

    # traffic ------------------------------------------------------------
    traffic: TrafficKind = "uniform"
    connections_per_host: int | Tuple[int, int] = 40
    packets_per_flow: int | Tuple[int, int] = 100
    #: skewed-traffic parameters (Section 6.5)
    num_hot_tors: int = 3
    hot_fraction: float = 0.8
    #: hot-ToR skew (Figure 9)
    hot_tor_skew: float = 0.5

    # failures -----------------------------------------------------------
    failure_kind: FailureKind = "random"
    num_bad_links: int = 1
    drop_rate_range: Tuple[float, float] = (5e-4, 1e-2)
    noise_range: Tuple[float, float] = (0.0, 1e-6)
    failure_levels: Optional[Sequence[LinkLevel]] = (LinkLevel.LEVEL1, LinkLevel.LEVEL2)
    #: Figure 11 single-level failure placement
    failure_level: LinkLevel = LinkLevel.LEVEL1
    failure_downward: bool = False
    #: Figure 12 skewed drop rates
    dominant_drop_rate_range: Tuple[float, float] = (0.1, 1.0)
    minor_drop_rate_range: Tuple[float, float] = (1e-4, 1e-3)

    #: optional time-varying timeline (flaps, bursts, reboots, drains,
    #: linecard failures, fabric expansions, traffic shifts) applied on top
    #: of the static ``failure_kind`` injection; makes the ground truth vary
    #: per epoch.
    script: Optional[ScenarioScript] = None

    # run ----------------------------------------------------------------
    epochs: int = 1
    seed: int = 0
    use_slb: bool = True
    #: analysis engine ("arrays" = vectorized default, "dicts" = reference).
    engine: EngineKind = "arrays"
    vote_policy: VotePolicy = "inverse_hops"
    blame: BlameConfig = field(default_factory=BlameConfig)
    simulate_setup_failures: bool = False
    storage_flow_fraction: float = 0.0

    def topology_params(self) -> ClosParameters:
        """The Clos sizing of this scenario."""
        return ClosParameters(
            npod=self.npod,
            n0=self.n0,
            n1=self.n1,
            n2=self.n2,
            hosts_per_tor=self.hosts_per_tor,
        )

    # ------------------------------------------------------------------
    # serialization: scenarios as shareable JSON files
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """The config as JSON-ready primitives (lossless round-trip).

        ``repro-007 scenario --dump-config`` writes this; ``--config`` reads
        it back, so whole scenarios travel as ``*.json`` files.
        """
        return {
            "npod": self.npod,
            "n0": self.n0,
            "n1": self.n1,
            "n2": self.n2,
            "hosts_per_tor": self.hosts_per_tor,
            "traffic": self.traffic,
            "connections_per_host": pair_to_json(self.connections_per_host),
            "packets_per_flow": pair_to_json(self.packets_per_flow),
            "num_hot_tors": self.num_hot_tors,
            "hot_fraction": self.hot_fraction,
            "hot_tor_skew": self.hot_tor_skew,
            "failure_kind": self.failure_kind,
            "num_bad_links": self.num_bad_links,
            "drop_rate_range": list(self.drop_rate_range),
            "noise_range": list(self.noise_range),
            "failure_levels": (
                None
                if self.failure_levels is None
                else [int(level) for level in self.failure_levels]
            ),
            "failure_level": int(self.failure_level),
            "failure_downward": self.failure_downward,
            "dominant_drop_rate_range": list(self.dominant_drop_rate_range),
            "minor_drop_rate_range": list(self.minor_drop_rate_range),
            "script": None if self.script is None else self.script.to_dict(),
            "epochs": self.epochs,
            "seed": self.seed,
            "use_slb": self.use_slb,
            "engine": self.engine,
            "vote_policy": self.vote_policy,
            "blame": blame_to_dict(self.blame),
            "simulate_setup_failures": self.simulate_setup_failures,
            "storage_flow_fraction": self.storage_flow_fraction,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ScenarioConfig":
        """Rebuild a config from :meth:`to_dict` output (unknown keys raise)."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown ScenarioConfig keys: {sorted(unknown)}")
        kwargs = dict(data)
        for key in ("connections_per_host", "packets_per_flow"):
            if key in kwargs:
                kwargs[key] = pair_from_json(kwargs[key])
        for key in (
            "drop_rate_range",
            "noise_range",
            "dominant_drop_rate_range",
            "minor_drop_rate_range",
        ):
            if key in kwargs and kwargs[key] is not None:
                lo, hi = kwargs[key]
                kwargs[key] = (float(lo), float(hi))
        if kwargs.get("failure_levels") is not None:
            kwargs["failure_levels"] = tuple(
                LinkLevel(level) for level in kwargs["failure_levels"]
            )
        if "failure_level" in kwargs:
            kwargs["failure_level"] = LinkLevel(kwargs["failure_level"])
        if isinstance(kwargs.get("blame"), dict):
            kwargs["blame"] = blame_from_dict(kwargs["blame"])
        if kwargs.get("script") is not None and isinstance(kwargs["script"], dict):
            kwargs["script"] = ScenarioScript.from_dict(kwargs["script"])
        return cls(**kwargs)


@dataclass
class ScenarioResult:
    """Output of one scenario run: ground truth plus 007's reports."""

    config: ScenarioConfig
    topology: ClosTopology
    failure_scenario: FailureScenario
    epoch_results: List[EpochResult]
    reports: List[EpochReport]
    system: Zero07System
    #: ground truth live during each epoch (static injections plus whatever
    #: scripted transients were active).  Indexed like ``reports``; empty only
    #: when a result was constructed by hand without per-epoch snapshots.
    truth_by_epoch: List[FailureScenario] = field(default_factory=list)

    # ------------------------------------------------------------------
    # ground truth helpers
    # ------------------------------------------------------------------
    def true_bad_links(self) -> List[DirectedLink]:
        """The statically injected failed directed links."""
        return list(self.failure_scenario.bad_links)

    def truth_for_epoch(self, epoch_index: int = 0) -> FailureScenario:
        """The failure ground truth that was live during one epoch."""
        if self.truth_by_epoch:
            return self.truth_by_epoch[epoch_index]
        return self.failure_scenario

    def true_flow_causes(self, epoch_index: int = 0) -> Dict[int, Optional[DirectedLink]]:
        """Ground-truth culprit per flow with retransmissions in an epoch."""
        epoch = self.epoch_results[epoch_index]
        return {
            flow.flow_id: flow.true_drop_link()
            for flow in epoch.flows
            if flow.has_retransmission
        }

    def flows_through_bad_links(self, epoch_index: int = 0) -> List[int]:
        """IDs of flows (with retransmissions) whose drops hit an injected failure."""
        bad = set(self.truth_for_epoch(epoch_index).bad_links)
        epoch = self.epoch_results[epoch_index]
        return [
            flow.flow_id
            for flow in epoch.flows
            if flow.has_retransmission and flow.true_drop_link() in bad
        ]

    # ------------------------------------------------------------------
    # scoring 007
    # ------------------------------------------------------------------
    def accuracy_007(self, epoch_index: int = 0) -> float:
        """Per-connection accuracy of 007 (Section 6's headline metric)."""
        report = self.reports[epoch_index]
        return per_flow_accuracy(
            report.flow_causes,
            self.true_flow_causes(epoch_index),
            restrict_to=self.flows_through_bad_links(epoch_index),
        )

    def detection_007(self, epoch_index: int = 0) -> DetectionScore:
        """Precision/recall of Algorithm 1 against that epoch's ground truth."""
        report = self.reports[epoch_index]
        return detection_precision_recall(
            report.detected_links, self.truth_for_epoch(epoch_index).bad_links
        )

    # ------------------------------------------------------------------
    # time-aware scoring (dynamic scenarios)
    # ------------------------------------------------------------------
    def detected_by_epoch(self) -> List[List[DirectedLink]]:
        """The links 007 flagged, one list per epoch."""
        return [list(report.detected_links) for report in self.reports]

    def _truth_links_by_epoch(self) -> List[List[DirectedLink]]:
        return [
            list(self.truth_for_epoch(i).bad_links) for i in range(len(self.reports))
        ]

    def per_epoch_detection_007(self) -> List[DetectionScore]:
        """Algorithm 1 precision/recall per epoch against per-epoch truth."""
        return per_epoch_detection(self.detected_by_epoch(), self._truth_links_by_epoch())

    def time_to_detection_007(self) -> Dict[DirectedLink, Optional[int]]:
        """Epochs from each failure's onset to its first in-window detection."""
        return time_to_detection(self.detected_by_epoch(), self._truth_links_by_epoch())

    def detection_latencies_007(self) -> Dict[DirectedLink, List[Optional[int]]]:
        """Per-episode detection latency for every link that ever went bad."""
        return detection_latencies(
            self.detected_by_epoch(), self._truth_links_by_epoch()
        )

    def mean_time_to_detection_007(self) -> float:
        """Mean detection latency in epochs (``nan`` when nothing was detected)."""
        return mean_time_to_detection(
            self.detected_by_epoch(), self._truth_links_by_epoch()
        )

    def false_alarm_rate_007(self, include_gaps: bool = False) -> float:
        """Rate of stale detections after failures cleared (``nan`` if none cleared).

        See :func:`repro.metrics.evaluation.false_alarm_rate_after_clear`
        for the ``include_gaps`` semantics on flapping truth.
        """
        return false_alarm_rate_after_clear(
            self.detected_by_epoch(),
            self._truth_links_by_epoch(),
            include_gaps=include_gaps,
        )

    # ------------------------------------------------------------------
    # multi-epoch aggregation (the ReportSink path, replayed post hoc)
    # ------------------------------------------------------------------
    def aggregate(self, topology: Optional[ClosTopology] = None):
        """A :class:`~repro.core.aggregate.MultiEpochAggregator` over this run.

        Replays every report (with its per-epoch ground truth) through the
        aggregator's :meth:`~repro.core.aggregate.MultiEpochAggregator.ingest`
        — the same fold a live scenario performs when the aggregator is
        attached as a report sink.  The default (own-topology) aggregation is
        built once and cached, so several aggregate metrics over one result
        share a single replay.
        """
        from repro.core.aggregate import MultiEpochAggregator

        if topology is None and getattr(self, "_aggregate_cache", None) is not None:
            return self._aggregate_cache
        aggregator = MultiEpochAggregator(topology=topology or self.topology)
        for i, report in enumerate(self.reports):
            aggregator.ingest(report, truth=self.truth_for_epoch(i))
        if topology is None:
            self._aggregate_cache = aggregator
        return aggregator

    # ------------------------------------------------------------------
    # scoring the optimization baselines
    # ------------------------------------------------------------------
    def _discovered_paths(self, epoch_index: int):
        report = self.reports[epoch_index]
        return [c for c in report.tally.contributions]

    def baseline_inputs(self, epoch_index: int = 0):
        """Routing matrix + retransmission counts from the same evidence 007 used."""
        contributions = self._discovered_paths(epoch_index)
        link_lists = [list(c.links) for c in contributions if c.links]
        flow_ids = [c.flow_id for c in contributions if c.links]
        counts = [c.retransmissions for c in contributions if c.links]
        routing = build_routing_matrix(link_lists, flow_ids=flow_ids)
        return routing, counts

    def binary_program_detection(self, epoch_index: int = 0, exact: Optional[bool] = None) -> DetectionScore:
        """Precision/recall of the binary program (eq. 3)."""
        routing, _ = self.baseline_inputs(epoch_index)
        result = solve_binary_program(routing, exact=exact)
        return detection_precision_recall(
            result.blamed_links, self.failure_scenario.bad_links
        )

    def integer_program_result(self, epoch_index: int = 0, exact: Optional[bool] = None) -> IntegerProgramResult:
        """Raw solution of the integer program (eq. 4)."""
        routing, counts = self.baseline_inputs(epoch_index)
        return solve_integer_program(routing, counts, exact=exact)

    def integer_program_detection(self, epoch_index: int = 0, exact: Optional[bool] = None) -> DetectionScore:
        """Precision/recall of the integer program (eq. 4)."""
        result = self.integer_program_result(epoch_index, exact=exact)
        return detection_precision_recall(
            result.blamed_links, self.failure_scenario.bad_links
        )

    def accuracy_integer_program(self, epoch_index: int = 0, exact: Optional[bool] = None) -> float:
        """Per-connection accuracy of the integer program's ranking."""
        result = self.integer_program_result(epoch_index, exact=exact)
        counts = result.drop_counts
        predicted: Dict[int, DirectedLink] = {}
        for contribution in self._discovered_paths(epoch_index):
            if not contribution.links:
                continue
            best = max(
                sorted(contribution.links), key=lambda link: counts.get(link, 0.0)
            )
            predicted[contribution.flow_id] = best
        return per_flow_accuracy(
            predicted,
            self.true_flow_causes(epoch_index),
            restrict_to=self.flows_through_bad_links(epoch_index),
        )


# ----------------------------------------------------------------------
def build_traffic(config: ScenarioConfig, topology: ClosTopology) -> TrafficGenerator:
    """Instantiate the traffic generator described by ``config``."""
    if config.traffic == "uniform":
        return UniformTraffic(
            topology,
            connections_per_host=config.connections_per_host,
            packets_per_flow=config.packets_per_flow,
        )
    if config.traffic == "skewed":
        return SkewedTraffic(
            topology,
            connections_per_host=config.connections_per_host,
            packets_per_flow=config.packets_per_flow,
            num_hot_tors=config.num_hot_tors,
            hot_fraction=config.hot_fraction,
        )
    if config.traffic == "hot_tor":
        return HotTorTraffic(
            topology,
            skew=config.hot_tor_skew,
            connections_per_host=config.connections_per_host,
            packets_per_flow=config.packets_per_flow,
        )
    raise ValueError(f"unknown traffic kind {config.traffic!r}")


def inject_failures(
    config: ScenarioConfig, topology: ClosTopology, link_table: LinkStateTable, seed: int
) -> FailureScenario:
    """Inject the failure pattern described by ``config``."""
    injector = FailureInjector(topology, link_table, rng=spawn_rng(seed, 77))
    if config.failure_kind == "none" or config.num_bad_links == 0:
        return FailureScenario()
    if config.failure_kind == "random":
        return injector.inject_random_failures(
            config.num_bad_links,
            drop_rate_range=config.drop_rate_range,
            levels=config.failure_levels,
        )
    if config.failure_kind == "skewed":
        return injector.inject_skewed_failures(
            config.num_bad_links,
            dominant_range=config.dominant_drop_rate_range,
            minor_range=config.minor_drop_rate_range,
            levels=config.failure_levels,
        )
    if config.failure_kind == "level":
        return injector.inject_failure_on_level(
            config.failure_level,
            drop_rate=float(np.mean(config.drop_rate_range)),
            downward=config.failure_downward,
        )
    raise ValueError(f"unknown failure kind {config.failure_kind!r}")


def build_system(
    config: ScenarioConfig, sinks: Sequence = ()
) -> Tuple[Zero07System, FailureScenario]:
    """Build the ready-to-run system (and injected truth) of a scenario."""
    topology = ClosTopology(config.topology_params())
    link_table = LinkStateTable(
        topology,
        noise_low=config.noise_range[0],
        noise_high=config.noise_range[1],
        rng=spawn_rng(config.seed, 1),
    )
    failure_scenario = inject_failures(config, topology, link_table, config.seed)
    traffic = build_traffic(config, topology)

    system_config = SystemConfig(
        blame=config.blame,
        vote_policy=config.vote_policy,
        use_slb=config.use_slb,
        engine=config.engine,
        # The paper's simulation study treats path discovery as reliable (the
        # probes "do not need to be dropped for 007 to operate", Section 4):
        # probes are lost only on fully blackholed links.  Lossy-probe mode is
        # still available through SystemConfig for robustness experiments.
        traceroute_probe_loss=False,
        simulation=SimulationConfig(
            simulate_setup_failures=config.simulate_setup_failures
        ),
    )
    system = Zero07System(
        topology=topology,
        traffic=traffic,
        link_table=link_table,
        config=system_config,
        rng=config.seed,
        script=config.script,
        sinks=sinks,
    )
    return system, failure_scenario


def stream_scenario(
    config: ScenarioConfig, sinks: Sequence = ()
) -> Iterator[Tuple[EpochResult, EpochReport, FailureScenario]]:
    """Stream a scenario epoch by epoch without accumulating results.

    Yields ``(epoch_result, report, truth)`` per epoch — the streaming
    alternative to :func:`run_scenario` for long dynamic scenarios where
    holding O(epochs) simulation results is not an option.  Report sinks fire
    as each epoch finalizes.
    """
    system, _ = build_system(config, sinks=sinks)
    for epoch_result, report in system.iter_epochs(config.epochs):
        yield epoch_result, report, system.ground_truth(report.epoch)


def run_scenario(config: ScenarioConfig, sinks: Sequence = ()) -> ScenarioResult:
    """Run one full scenario: build, inject, simulate, analyse.

    ``sinks`` (:class:`~repro.api.service.ReportSink` observers) are notified
    with every finalized epoch report as the scenario streams through the
    analysis service.
    """
    system, failure_scenario = build_system(config, sinks=sinks)
    epoch_results: List[EpochResult] = []
    reports: List[EpochReport] = []
    truth_by_epoch: List[FailureScenario] = []
    for epoch_result, report in system.iter_epochs(config.epochs):
        epoch_results.append(epoch_result)
        reports.append(report)
        truth_by_epoch.append(system.ground_truth(epoch_result.epoch))
    return ScenarioResult(
        config=config,
        topology=system.topology,
        failure_scenario=failure_scenario,
        epoch_results=epoch_results,
        reports=reports,
        system=system,
        truth_by_epoch=truth_by_epoch,
    )


def run_trials(
    config: ScenarioConfig, trials: int, base_seed: Optional[int] = None
) -> List[ScenarioResult]:
    """Run the same scenario several times with different seeds."""
    results = []
    for trial in range(trials):
        seed = (base_seed if base_seed is not None else config.seed) + 1000 * trial
        # Deep-copy the nested mutable config: ``replace(config, ...)`` alone
        # would alias one BlameConfig instance across every trial (the same
        # class of bug Zero07System fixes for SystemConfig/SimulationConfig).
        trial_config = replace(config, seed=seed, blame=replace(config.blame))
        results.append(run_scenario(trial_config))
    return results
