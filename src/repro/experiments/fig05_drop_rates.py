"""Figure 5: per-connection accuracy while varying the failed-link drop rate.

Panel (a): a single failed link whose drop rate sweeps below and above the
conservative Theorem 2 bound.  Panel (b): multiple failed links with very
different drop rates (the paper's default (0.01%, 1%) range).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.base import ExperimentResult
from repro.experiments.runner import SweepRunner, run_point_sweep
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.sweeps import accuracy_metrics

DEFAULT_DROP_RATES = (1e-4, 5e-4, 1e-3, 5e-3, 1e-2)
DEFAULT_FAILED_LINK_COUNTS = (2, 6, 10, 14)


def run_fig05_single(
    drop_rates: Sequence[float] = DEFAULT_DROP_RATES,
    trials: int = 3,
    seed: int = 0,
    include_baselines: bool = True,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Panel (a): accuracy vs drop rate of a single failed link."""
    points = [
        (
            {"drop_rate": rate},
            ScenarioConfig(num_bad_links=1, drop_rate_range=(rate, rate), seed=seed),
        )
        for rate in drop_rates
    ]
    return run_point_sweep(
        name="Figure 5a",
        description="accuracy vs drop rate, single failure",
        points=points,
        metric_fns=accuracy_metrics(include_baselines=include_baselines),
        trials=trials,
        base_seed=seed,
        runner=runner,
    )


def run_fig05_multiple(
    failed_link_counts: Sequence[int] = DEFAULT_FAILED_LINK_COUNTS,
    trials: int = 3,
    seed: int = 0,
    include_baselines: bool = True,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Panel (b): accuracy vs number of failures with widely varying drop rates."""
    points = [
        (
            {"num_failed_links": count},
            ScenarioConfig(num_bad_links=count, drop_rate_range=(1e-4, 1e-2), seed=seed),
        )
        for count in failed_link_counts
    ]
    return run_point_sweep(
        name="Figure 5b",
        description="accuracy vs #failures, mixed drop rates",
        points=points,
        metric_fns=accuracy_metrics(include_baselines=include_baselines),
        trials=trials,
        base_seed=seed,
        runner=runner,
    )


def run_fig05(
    trials: int = 3,
    seed: int = 0,
    include_baselines: bool = True,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Both panels merged into one result table."""
    merged = ExperimentResult(name="Figure 5", description="accuracy vs drop rates")
    for sub in (
        run_fig05_single(
            trials=trials, seed=seed, include_baselines=include_baselines, runner=runner
        ),
        run_fig05_multiple(
            trials=trials, seed=seed, include_baselines=include_baselines, runner=runner
        ),
    ):
        for point in sub.points:
            merged.add_point({"panel": sub.name, **point.parameters}, point.metrics)
    return merged
