"""Figure 5: per-connection accuracy while varying the failed-link drop rate.

Panel (a): a single failed link whose drop rate sweeps below and above the
conservative Theorem 2 bound.  Panel (b): multiple failed links with very
different drop rates (the paper's default (0.01%, 1%) range).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.experiments.base import ExperimentResult
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.sweeps import accuracy_metrics, average_over_trials

DEFAULT_DROP_RATES = (1e-4, 5e-4, 1e-3, 5e-3, 1e-2)
DEFAULT_FAILED_LINK_COUNTS = (2, 6, 10, 14)


def run_fig05_single(
    drop_rates: Sequence[float] = DEFAULT_DROP_RATES,
    trials: int = 3,
    seed: int = 0,
    include_baselines: bool = True,
) -> ExperimentResult:
    """Panel (a): accuracy vs drop rate of a single failed link."""
    result = ExperimentResult(
        name="Figure 5a", description="accuracy vs drop rate, single failure"
    )
    metrics = accuracy_metrics(include_baselines=include_baselines)
    for rate in drop_rates:
        config = ScenarioConfig(
            num_bad_links=1,
            drop_rate_range=(rate, rate),
            seed=seed,
        )
        averaged = average_over_trials(config, metrics, trials=trials, base_seed=seed)
        result.add_point({"drop_rate": rate}, averaged)
    return result


def run_fig05_multiple(
    failed_link_counts: Sequence[int] = DEFAULT_FAILED_LINK_COUNTS,
    trials: int = 3,
    seed: int = 0,
    include_baselines: bool = True,
) -> ExperimentResult:
    """Panel (b): accuracy vs number of failures with widely varying drop rates."""
    result = ExperimentResult(
        name="Figure 5b", description="accuracy vs #failures, mixed drop rates"
    )
    metrics = accuracy_metrics(include_baselines=include_baselines)
    for count in failed_link_counts:
        config = ScenarioConfig(
            num_bad_links=count,
            drop_rate_range=(1e-4, 1e-2),
            seed=seed,
        )
        averaged = average_over_trials(config, metrics, trials=trials, base_seed=seed)
        result.add_point({"num_failed_links": count}, averaged)
    return result


def run_fig05(trials: int = 3, seed: int = 0, include_baselines: bool = True) -> ExperimentResult:
    """Both panels merged into one result table."""
    merged = ExperimentResult(name="Figure 5", description="accuracy vs drop rates")
    for sub in (
        run_fig05_single(trials=trials, seed=seed, include_baselines=include_baselines),
        run_fig05_multiple(trials=trials, seed=seed, include_baselines=include_baselines),
    ):
        for point in sub.points:
            merged.add_point({"panel": sub.name, **point.parameters}, point.metrics)
    return merged
