"""Figure 10: Algorithm 1 precision/recall vs the drop rate of a single failed
link, compared against the integer and binary programs."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.base import ExperimentResult
from repro.experiments.runner import SweepRunner, run_point_sweep
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.sweeps import detection_metrics

DEFAULT_DROP_RATES = (1e-4, 5e-4, 1e-3, 5e-3, 1e-2)


def run_fig10(
    drop_rates: Sequence[float] = DEFAULT_DROP_RATES,
    trials: int = 3,
    seed: int = 0,
    include_baselines: bool = True,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Regenerate Figure 10 (detection precision/recall, single failure)."""
    points = [
        (
            {"drop_rate": rate},
            ScenarioConfig(num_bad_links=1, drop_rate_range=(rate, rate), seed=seed),
        )
        for rate in drop_rates
    ]
    return run_point_sweep(
        name="Figure 10",
        description="Algorithm 1 precision/recall vs drop rate, single failure",
        points=points,
        metric_fns=detection_metrics(include_baselines=include_baselines),
        trials=trials,
        base_seed=seed,
        runner=runner,
    )
