"""Shared experiment result containers and table formatting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


@dataclass
class ExperimentPoint:
    """One point of a parameter sweep: its parameters and measured metrics."""

    parameters: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)

    def as_row(self) -> Dict[str, Any]:
        """Flatten parameters and metrics into one row dictionary."""
        row: Dict[str, Any] = {}
        row.update(self.parameters)
        row.update(self.metrics)
        return row


@dataclass
class ExperimentResult:
    """The regenerated data of one table or figure."""

    name: str
    description: str = ""
    points: List[ExperimentPoint] = field(default_factory=list)

    def add_point(self, parameters: Dict[str, Any], metrics: Dict[str, float]) -> ExperimentPoint:
        """Append one sweep point."""
        point = ExperimentPoint(parameters=dict(parameters), metrics=dict(metrics))
        self.points.append(point)
        return point

    def rows(self) -> List[Dict[str, Any]]:
        """All points flattened into row dictionaries."""
        return [point.as_row() for point in self.points]

    def columns(self) -> List[str]:
        """Union of the column names across all rows, in first-seen order."""
        seen: List[str] = []
        for row in self.rows():
            for key in row:
                if key not in seen:
                    seen.append(key)
        return seen

    def metric_series(self, metric: str) -> List[float]:
        """The values of one metric across the sweep, in point order."""
        return [point.metrics[metric] for point in self.points if metric in point.metrics]

    def format_table(self, float_format: str = "{:.3f}") -> str:
        """Render the result as a fixed-width text table (for bench output)."""
        columns = self.columns()
        if not columns:
            return f"{self.name}: (no data)"

        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return float_format.format(value)
            return str(value)

        rows = [[fmt(row.get(col, "")) for col in columns] for row in self.rows()]
        widths = [
            max(len(col), *(len(r[i]) for r in rows)) if rows else len(col)
            for i, col in enumerate(columns)
        ]
        header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
        separator = "-+-".join("-" * w for w in widths)
        body = "\n".join(
            " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)) for row in rows
        )
        title = f"== {self.name} =="
        if self.description:
            title += f"  ({self.description})"
        return "\n".join([title, header, separator, body])

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.format_table()
