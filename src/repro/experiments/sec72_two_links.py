"""Section 7.2: per-connection diagnosis with two links of different drop rates.

Two test-cluster links are failed at 0.2% and 0.05%; only flows that traverse
at least one of the two are scored.  The paper attributes the drop to the
correct (higher-drop-rate) link for 90.47% of those flows.  Section 7.3's
two-link variant (0.2% / 0.1%) is also provided.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.ranking import rank_of_link
from repro.experiments.base import ExperimentResult
from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.metrics.evaluation import per_flow_accuracy
from repro.netsim.links import LinkStateTable
from repro.topology.elements import LinkLevel


def run_sec72(
    drop_rates: Tuple[float, float] = (2e-3, 5e-4),
    epochs: int = 4,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate the Section 7.2/7.3 two-link test-cluster experiments."""
    config = ScenarioConfig(
        npod=1,
        n0=10,
        n1=4,
        n2=1,
        hosts_per_tor=4,
        failure_kind="none",
        epochs=epochs,
        seed=seed,
        connections_per_host=120,
    )
    scenario_result = _run_with_two_failures(config, drop_rates)
    return scenario_result


def _run_with_two_failures(
    config: ScenarioConfig, drop_rates: Tuple[float, float]
) -> ExperimentResult:
    from repro.experiments.scenario import build_traffic
    from repro.core.pipeline import SystemConfig, Zero07System
    from repro.netsim.simulator import SimulationConfig
    from repro.topology.clos import ClosTopology
    from repro.util.rng import spawn_rng

    topology = ClosTopology(config.topology_params())
    link_table = LinkStateTable(topology, rng=spawn_rng(config.seed, 1))
    # Fail two distinct T1->ToR links with the requested rates.
    level1 = topology.links_of_level(LinkLevel.LEVEL1)
    first = level1[0]
    second = level1[len(level1) // 2]
    injector_links = []
    for physical, rate in zip((first, second), drop_rates):
        # Fail the T1 -> ToR direction; the T1 endpoint's name contains "-t1-".
        t1_end = physical.a if "-t1-" in physical.a else physical.b
        tor_end = physical.b if t1_end == physical.a else physical.a
        directed = [l for l in physical.directions() if l.src == t1_end and l.dst == tor_end][0]
        link_table.inject_failure(directed, rate)
        injector_links.append((directed, rate))

    system = Zero07System(
        topology=topology,
        traffic=build_traffic(config, topology),
        link_table=link_table,
        config=SystemConfig(simulation=SimulationConfig(simulate_setup_failures=False)),
        rng=config.seed,
    )
    runs = system.run(config.epochs)

    high_link = max(injector_links, key=lambda lr: lr[1])[0]
    both = {link for link, _ in injector_links}
    accuracies = []
    high_ranks_first = []
    for sim_result, report in runs:
        true_causes = {
            f.flow_id: f.true_drop_link()
            for f in sim_result.flows
            if f.has_retransmission
        }
        eligible = [
            f.flow_id
            for f in sim_result.flows
            if f.has_retransmission and any(link in both for link in f.path.links)
        ]
        accuracy = per_flow_accuracy(report.flow_causes, true_causes, restrict_to=eligible)
        if not np.isnan(accuracy):
            accuracies.append(accuracy)
        rank = rank_of_link(report.tally, high_link)
        high_ranks_first.append(1.0 if rank == 1 else 0.0)

    result = ExperimentResult(
        name="Section 7.2",
        description="two failed links with different drop rates on the test cluster",
    )
    result.add_point(
        {
            "drop_rate_high": max(drop_rates),
            "drop_rate_low": min(drop_rates),
        },
        {
            "per_connection_accuracy": float(np.mean(accuracies)) if accuracies else float("nan"),
            "frac_epochs_high_rate_link_ranked_first": float(np.mean(high_ranks_first)),
            "epochs": float(len(runs)),
        },
    )
    return result
