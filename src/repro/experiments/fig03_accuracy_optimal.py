"""Figure 3: per-connection accuracy vs number of failed links, Theorem 2 regime.

Failed-link drop rates are drawn from (0.05%, 1%) so that Theorem 2's
signal-to-noise condition holds.  The paper reports 007 averaging above 96%
accuracy and generally beating the integer optimization.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.experiments.base import ExperimentResult
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.sweeps import accuracy_metrics, average_over_trials

DEFAULT_FAILED_LINK_COUNTS = (2, 6, 10, 14)


def run_fig03(
    failed_link_counts: Sequence[int] = DEFAULT_FAILED_LINK_COUNTS,
    trials: int = 3,
    seed: int = 0,
    include_baselines: bool = True,
) -> ExperimentResult:
    """Regenerate Figure 3 (accuracy vs number of failed links)."""
    base = ScenarioConfig(
        drop_rate_range=(5e-4, 1e-2),
        seed=seed,
    )
    result = ExperimentResult(
        name="Figure 3",
        description="per-connection accuracy vs #failed links (Theorem 2 holds)",
    )
    metrics = accuracy_metrics(include_baselines=include_baselines)
    for count in failed_link_counts:
        config = replace(base, num_bad_links=count)
        averaged = average_over_trials(config, metrics, trials=trials, base_seed=seed)
        result.add_point({"num_failed_links": count}, averaged)
    return result
