"""Figure 3: per-connection accuracy vs number of failed links, Theorem 2 regime.

Failed-link drop rates are drawn from (0.05%, 1%) so that Theorem 2's
signal-to-noise condition holds.  The paper reports 007 averaging above 96%
accuracy and generally beating the integer optimization.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from repro.experiments.base import ExperimentResult
from repro.experiments.runner import SweepRunner, run_point_sweep
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.sweeps import accuracy_metrics

DEFAULT_FAILED_LINK_COUNTS = (2, 6, 10, 14)


def run_fig03(
    failed_link_counts: Sequence[int] = DEFAULT_FAILED_LINK_COUNTS,
    trials: int = 3,
    seed: int = 0,
    include_baselines: bool = True,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Regenerate Figure 3 (accuracy vs number of failed links)."""
    base = ScenarioConfig(
        drop_rate_range=(5e-4, 1e-2),
        seed=seed,
    )
    points = [
        ({"num_failed_links": count}, replace(base, num_bad_links=count))
        for count in failed_link_counts
    ]
    return run_point_sweep(
        name="Figure 3",
        description="per-connection accuracy vs #failed links (Theorem 2 holds)",
        points=points,
        metric_fns=accuracy_metrics(include_baselines=include_baselines),
        trials=trials,
        base_seed=seed,
        runner=runner,
    )
