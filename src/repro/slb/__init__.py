"""Software load balancer substrate (Ananta-style VIP -> DIP mapping)."""

from repro.slb.loadbalancer import (
    SlbQueryError,
    SnatTable,
    SoftwareLoadBalancer,
    VirtualSwitch,
)

__all__ = ["SoftwareLoadBalancer", "VirtualSwitch", "SnatTable", "SlbQueryError"]
