"""Software load balancer, virtual switch and SNAT models.

In the paper's datacenter a TCP connection is established to a *virtual* IP
(VIP); the SYN traverses the software load balancer (SLB), which assigns the
flow to a physical destination IP (DIP) and pushes that mapping down to the
virtual switch (vSwitch) of the source hypervisor.  All later packets carry
the DIP and bypass the SLB.  For the traceroute of the path discovery agent
to follow the data packets, its header must contain the DIP — so the agent
queries the SLB (preferred, because the vSwitch may have evicted the mapping
when the connection died) before tracing.

The models here reproduce that query surface including its failure modes:
missing mappings, evicted vSwitch entries, and SNAT rewriting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.routing.fivetuple import FiveTuple
from repro.util.rng import RngLike, ensure_rng


class SlbQueryError(RuntimeError):
    """The SLB could not resolve a VIP -> DIP mapping for a flow."""


@dataclass
class VirtualSwitch:
    """Per-hypervisor vSwitch holding the VIP->DIP registrations of its flows."""

    host: str
    mappings: Dict[Tuple, str] = field(default_factory=dict)

    def register(self, flow_key: Tuple, dip: str) -> None:
        """Record the DIP the SLB assigned to a flow originating on this host."""
        self.mappings[flow_key] = dip

    def evict(self, flow_key: Tuple) -> None:
        """Remove a registration (happens when the connection terminates)."""
        self.mappings.pop(flow_key, None)

    def lookup(self, flow_key: Tuple) -> Optional[str]:
        """Return the DIP for a flow, or ``None`` when the entry was evicted."""
        return self.mappings.get(flow_key)


class SnatTable:
    """Source NAT table: rewrites the source of outbound flows.

    007 assumes connections are SNAT-bypassed; when they are not, the ICMP
    responses carry the translated source and the agent must ask the SLB to
    undo the translation (Section 9.1).  The table supports both directions.
    """

    def __init__(self, nat_ip: str = "snat-gateway") -> None:
        self._nat_ip = nat_ip
        self._forward: Dict[Tuple, FiveTuple] = {}
        self._next_port = 40000

    def translate(self, flow: FiveTuple) -> FiveTuple:
        """Rewrite the source of ``flow``; remembers the reverse mapping."""
        translated = flow.with_source(self._nat_ip, self._next_port)
        self._forward[translated.canonical_key()] = flow
        self._next_port += 1
        if self._next_port > 65000:
            self._next_port = 40000
        return translated

    def reverse(self, translated: FiveTuple) -> Optional[FiveTuple]:
        """Return the original flow for a translated five-tuple."""
        return self._forward.get(translated.canonical_key())


class SoftwareLoadBalancer:
    """VIP -> DIP assignment with vSwitch registration.

    Parameters
    ----------
    query_failure_rate:
        Probability that an SLB control-plane query fails (007 then skips path
        discovery for that flow rather than tracerouting the Internet).
    vip_prefix:
        Prefix used to synthesise one VIP per destination service/host.
    """

    def __init__(
        self,
        query_failure_rate: float = 0.0,
        vip_prefix: str = "vip",
        rng: RngLike = 0,
    ) -> None:
        if not 0.0 <= query_failure_rate <= 1.0:
            raise ValueError("query_failure_rate must be in [0, 1]")
        self._query_failure_rate = query_failure_rate
        self._vip_prefix = vip_prefix
        self._rng = ensure_rng(rng)
        self._vip_pools: Dict[str, List[str]] = {}
        self._flow_to_dip: Dict[Tuple, str] = {}
        self._vswitches: Dict[str, VirtualSwitch] = {}
        self._queries = 0
        self._failed_queries = 0

    # ------------------------------------------------------------------
    # VIP pool management
    # ------------------------------------------------------------------
    def register_vip(self, vip: str, dips: List[str]) -> None:
        """Register (or replace) the DIP pool behind ``vip``."""
        if not dips:
            raise ValueError("a VIP needs at least one DIP")
        self._vip_pools[vip] = list(dips)

    def vip_for_host(self, dst_host: str) -> str:
        """The synthetic VIP fronting ``dst_host`` (auto-registered)."""
        vip = f"{self._vip_prefix}:{dst_host}"
        if vip not in self._vip_pools:
            self._vip_pools[vip] = [dst_host]
        return vip

    def dips_of(self, vip: str) -> List[str]:
        """The DIP pool behind ``vip``."""
        return list(self._vip_pools.get(vip, []))

    # ------------------------------------------------------------------
    # connection establishment
    # ------------------------------------------------------------------
    def establish_connection(
        self,
        src_host: str,
        dst_host: str,
        src_port: int,
        dst_port: int,
    ) -> Tuple[FiveTuple, FiveTuple]:
        """Establish a connection from ``src_host`` to the VIP of ``dst_host``.

        Returns ``(app_tuple, data_tuple)``: the tuple the application sees
        (destination = VIP) and the tuple data packets carry on the wire
        (destination = DIP), respectively.
        """
        vip = self.vip_for_host(dst_host)
        dip = self._pick_dip(vip, preferred=dst_host)
        app_tuple = FiveTuple(
            src_ip=src_host, dst_ip=vip, src_port=src_port, dst_port=dst_port
        )
        data_tuple = app_tuple.with_destination(dip)
        self._flow_to_dip[app_tuple.canonical_key()] = dip
        self.vswitch(src_host).register(app_tuple.canonical_key(), dip)
        return app_tuple, data_tuple

    def terminate_connection(self, app_tuple: FiveTuple, src_host: str) -> None:
        """Tear down a connection: the vSwitch entry is evicted (SLB keeps its state)."""
        self.vswitch(src_host).evict(app_tuple.canonical_key())

    # ------------------------------------------------------------------
    # queries used by the path discovery agent
    # ------------------------------------------------------------------
    def query_dip(self, app_tuple: FiveTuple) -> str:
        """Resolve the DIP assigned to a flow (the agent's preferred query).

        Raises :class:`SlbQueryError` when the query fails (either because the
        control plane is unavailable — simulated by ``query_failure_rate`` —
        or because the flow is unknown, e.g. a connection whose establishment
        itself failed).
        """
        self._queries += 1
        if self._query_failure_rate > 0 and self._rng.random() < self._query_failure_rate:
            self._failed_queries += 1
            raise SlbQueryError("SLB query timed out")
        dip = self._flow_to_dip.get(app_tuple.canonical_key())
        if dip is None:
            self._failed_queries += 1
            raise SlbQueryError(f"no VIP->DIP mapping for {app_tuple}")
        return dip

    def vswitch(self, host: str) -> VirtualSwitch:
        """The vSwitch of ``host`` (created on first use)."""
        if host not in self._vswitches:
            self._vswitches[host] = VirtualSwitch(host=host)
        return self._vswitches[host]

    @property
    def query_stats(self) -> Tuple[int, int]:
        """``(total_queries, failed_queries)`` counters."""
        return self._queries, self._failed_queries

    # ------------------------------------------------------------------
    def _pick_dip(self, vip: str, preferred: Optional[str] = None) -> str:
        pool = self._vip_pools[vip]
        if preferred is not None and preferred in pool:
            return preferred
        return pool[int(self._rng.integers(0, len(pool)))]
