"""Theorem 1: the per-host traceroute rate that keeps switches under Tmax.

    Ct <= Tmax / (n0 * H) * min[ n1, n2 * (n0 * npod - 1) / (n0 * (npod - 1)) ]

where ``n0``, ``n1``, ``n2`` are the numbers of ToR, tier-1 and tier-2
switches (per pod for the first two), ``npod`` the number of pods and ``H``
the number of hosts per ToR.  As long as every host starts fewer than ``Ct``
traceroutes per second, no switch generates more than ``Tmax`` ICMP responses
per second.
"""

from __future__ import annotations

from repro.topology.clos import ClosParameters


def traceroute_rate_bound(params: ClosParameters, tmax: int = 100) -> float:
    """Upper bound ``Ct`` on per-host traceroutes per second (Theorem 1).

    For a single-pod topology no flow crosses a level-2 link toward another
    pod, so only the ``n1`` term applies.
    """
    if tmax < 1:
        raise ValueError("tmax must be >= 1")
    n0, n1, n2 = params.n0, params.n1, params.n2
    npod, hosts = params.npod, params.hosts_per_tor

    if npod > 1:
        level2_term = n2 * (n0 * npod - 1) / (n0 * (npod - 1))
        limiting = min(n1, level2_term)
    else:
        limiting = float(n1)
    return tmax / (n0 * hosts) * limiting


def level1_icmp_rate(params: ClosParameters, ct: float) -> float:
    """Expected ICMP rate at a level-1 link's switch given per-host rate ``ct``.

    Equation (5) of the proof: ``R1 = Ct * H / n1``; a tier-1 switch has
    ``n0`` such links, so its total rate is ``n0 * R1``.
    """
    return params.n0 * ct * params.hosts_per_tor / params.n1


def level2_icmp_rate(params: ClosParameters, ct: float) -> float:
    """Expected ICMP rate at a tier-2 switch given per-host traceroute rate ``ct``.

    Equation (6) of the proof: ``R2`` per link times the ``n1`` links that a
    tier-2 switch terminates per pod (aggregated over pods by the n0 factor of
    the cross-pod probability).
    """
    if params.npod <= 1:
        return 0.0
    n0, n1, n2, npod = params.n0, params.n1, params.n2, params.npod
    hosts = params.hosts_per_tor
    r2 = (n0 / (n1 * n2)) * (n0 * (npod - 1) / (n0 * npod - 1)) * ct * hosts
    return n1 * r2


def validates_tmax(params: ClosParameters, ct: float, tmax: int = 100) -> bool:
    """True when per-host rate ``ct`` keeps every switch at or below ``tmax``."""
    return max(level1_icmp_rate(params, ct), level2_icmp_rate(params, ct)) <= tmax + 1e-9
