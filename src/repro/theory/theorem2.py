"""Theorem 2/3: accuracy of the voting scheme.

Under the Clos/ECMP model, 007 ranks every bad link (per-packet drop
probability ``pb``) above every good link (drop probability ``pg``) with
probability at least ``1 - eps`` provided the signal-to-noise condition

    pg <= (1 - (1 - pb)^cl) / (alpha * cu)

holds, where ``cl``/``cu`` bound the packets per connection and ``alpha`` is
the topology-dependent constant of equation (8).  The error probability decays
exponentially in the number of connections ``N`` (equation (9), a Chernoff /
large-deviations bound expressed with the Bernoulli KL divergence).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.topology.clos import ClosParameters


def alpha(params: ClosParameters, num_bad_links: int) -> float:
    """The constant ``alpha`` of equation (8)."""
    n0, n2, npod = params.n0, params.n2, params.npod
    k = num_bad_links
    if npod < 2:
        raise ValueError("alpha is defined for npod >= 2")
    denominator = n2 * (n0 * npod - 1) - n0 * (npod - 1) * k
    if denominator <= 0:
        raise ValueError(
            "too many bad links for Theorem 2's regime "
            f"(k={k} >= {max_detectable_bad_links(params):.2f})"
        )
    return n0 * (4 * n0 - k) * (npod - 1) / denominator


def max_detectable_bad_links(params: ClosParameters) -> float:
    """The bound ``k < n2 (n0 npod - 1) / (n0 (npod - 1))`` of Theorem 2."""
    n0, n2, npod = params.n0, params.n2, params.npod
    if npod < 2:
        return float("inf")
    return n2 * (n0 * npod - 1) / (n0 * (npod - 1))


def retransmission_probability(drop_rate: float, packets: int) -> float:
    """Probability that a connection of ``packets`` packets sees >= 1 drop."""
    if not 0.0 <= drop_rate <= 1.0:
        raise ValueError("drop_rate must be in [0, 1]")
    if packets < 0:
        raise ValueError("packets must be >= 0")
    return 1.0 - (1.0 - drop_rate) ** packets


def noise_tolerance_bound(
    params: ClosParameters,
    bad_drop_rate: float,
    num_bad_links: int,
    packets_lower: int,
    packets_upper: int,
) -> float:
    """Maximum good-link drop rate ``pg`` tolerated by Theorem 2 (equation 7)."""
    if packets_lower > packets_upper:
        raise ValueError("packets_lower must be <= packets_upper")
    a = alpha(params, num_bad_links)
    rb_lower = retransmission_probability(bad_drop_rate, packets_lower)
    return rb_lower / (a * packets_upper)


def theorem2_conditions_hold(params: ClosParameters, num_bad_links: int) -> bool:
    """Check the structural conditions of Theorem 3 (pods, n0 vs n2, k bound)."""
    n0, n1, n2, npod = params.n0, params.n1, params.n2, params.npod
    if n0 < n2:
        return False
    if npod < 2:
        return False
    required_pods = 1 + max(n0 / n1, n2 * (n0 - 1) / (n0 * (n0 - n2)) if n0 > n2 else 1.0, 1.0)
    if npod < required_pods:
        return False
    return num_bad_links < max_detectable_bad_links(params)


def vote_probability_bounds(
    params: ClosParameters,
    retx_prob_bad: float,
    retx_prob_good: float,
    num_bad_links: int,
) -> Tuple[float, float]:
    """Lemma 2's bounds ``(vb_lower, vg_upper)`` on vote probabilities."""
    n0, n1, n2, npod = params.n0, params.n1, params.n2, params.npod
    k = num_bad_links
    if npod < 2:
        raise ValueError("Lemma 2 requires npod >= 2")
    vb_lower = retx_prob_bad / (n0 * n1 * npod)
    vg_upper = (
        1.0
        / (n1 * n2 * npod)
        * (n0 * (npod - 1) / (n0 * npod - 1))
        * ((4 - k / n0) * retx_prob_good + (k / n0) * retx_prob_bad)
    )
    return vb_lower, vg_upper


def kl_divergence_bernoulli(q: float, r: float) -> float:
    """Kullback-Leibler divergence between Bernoulli(q) and Bernoulli(r)."""
    for value in (q, r):
        if not 0.0 <= value <= 1.0:
            raise ValueError("probabilities must be in [0, 1]")
    if r in (0.0, 1.0) and q != r:
        return float("inf")
    terms = 0.0
    if q > 0.0:
        terms += q * math.log(q / r)
    if q < 1.0:
        terms += (1.0 - q) * math.log((1.0 - q) / (1.0 - r))
    return terms


def error_probability_bound(
    num_connections: int,
    vote_prob_good: float,
    vote_prob_bad: float,
    delta: Optional[float] = None,
) -> float:
    """Equation (9): bound on the probability 007 mis-ranks a bad link.

    ``delta`` defaults to the midpoint value ``(vb - vg) / (vb + vg)`` used in
    the proof of Lemma 1.  Returns a value capped at 1.
    """
    if num_connections < 0:
        raise ValueError("num_connections must be >= 0")
    if vote_prob_bad <= vote_prob_good:
        return 1.0
    if delta is None:
        delta = (vote_prob_bad - vote_prob_good) / (vote_prob_bad + vote_prob_good)
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must be in (0, 1)")
    up = kl_divergence_bernoulli(min(1.0, (1 + delta) * vote_prob_good), vote_prob_good)
    down = kl_divergence_bernoulli(max(0.0, (1 - delta) * vote_prob_bad), vote_prob_bad)
    eps = math.exp(-num_connections * up) + math.exp(-num_connections * down)
    return min(1.0, eps)
