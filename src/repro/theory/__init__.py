"""Theoretical results of the paper: Theorem 1 (ICMP budget) and Theorem 2/3
(accuracy of the voting scheme)."""

from repro.theory.theorem1 import traceroute_rate_bound
from repro.theory.theorem2 import (
    alpha,
    error_probability_bound,
    kl_divergence_bernoulli,
    max_detectable_bad_links,
    noise_tolerance_bound,
    retransmission_probability,
    vote_probability_bounds,
)

__all__ = [
    "traceroute_rate_bound",
    "alpha",
    "max_detectable_bad_links",
    "noise_tolerance_bound",
    "retransmission_probability",
    "vote_probability_bounds",
    "kl_divergence_bernoulli",
    "error_probability_bound",
]
