"""The fleet analyzer: an asyncio front-end over the streaming service.

One process accepts N agent connections (TCP or Unix sockets), reassembles
the global evidence order from contiguous per-agent chunks, and feeds the
analysis core.  Two interchangeable cores implement ingestion:

* :class:`ServiceIngestCore` — decodes every chunk to evidence objects and
  hands them to a real :class:`~repro.api.service.Zero07Service` /
  :class:`~repro.api.sharded.ShardedService` through the vectorized
  ``ingest_run`` path.  Full service semantics (both engines, process
  backend, checkpoints) at object-decode speed.
* :class:`ColumnarIngestCore` — folds each chunk's
  :class:`~repro.api.wire.WireRun` columns straight into an
  :class:`~repro.api.wire.EvidenceColumnStore` (no per-event objects), and
  materializes reports with ``AnalysisAgent.analyze_tally``.  Reports are
  bit-identical to an ``ingest_batch`` replay — the store's own proven
  contract — at several times the object-decode throughput.  Any delivery
  the columns cannot prove clean falls back to replaying the epoch's
  retained chunks through a throwaway service, which is the correctness
  oracle.

Ordering discipline: agents send *contiguous* slices of each epoch's
sequence space, so the analyzer reassembles the exact global order by
sorting whole chunks — never individual events.  A chunk that extends the
epoch's flushed prefix is ingested immediately; anything else stages until
its gap closes or the epoch's tick barrier (every expected agent ticked)
flushes the remainder.  Redelivered chunks after a reconnect are dropped or
trimmed against the flushed watermark, and whatever slips through is
deduplicated by the service's per-epoch sequence tracking — at-least-once
delivery with exactly-once effect.

Backpressure: each connection gets a byte credit window in its WELCOME;
evidence is acked (with the epoch/seq watermark and cumulative bytes) as it
is staged.  When total staged bytes exceed the configured bound the
analyzer defers acks — agents stall on their windows — and releases them as
flushes drain the backlog; each deferral episode counts one backpressure
engagement.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.api.events import EpochTick
from repro.api.service import ReportUnavailableError, Zero07Service
from repro.api.wire import (
    EvidenceColumnStore,
    LinkRemap,
    WireDecoder,
    WireProtocolError,
    WireRun,
)
from repro.core.analysis import AnalysisAgent, EpochReport
from repro.core.arrays import LinkIndex
from repro.core.blame import BlameConfig
from repro.core.votes import VotePolicy
from repro.fleet import protocol
from repro.fleet.protocol import (
    Endpoint,
    FleetProtocolError,
    FrameReader,
    HandshakeError,
    VersionMismatchError,
)
from repro.testing import report_signature


@dataclass
class AnalyzerStats:
    """Counters describing one analyzer's lifetime (served over the query socket)."""

    connections_accepted: int = 0
    handshakes: int = 0
    frames_received: int = 0
    bytes_received: int = 0
    evidence_events: int = 0
    chunks_staged: int = 0
    chunks_flushed: int = 0
    duplicate_chunks: int = 0
    trimmed_chunks: int = 0
    late_chunks: int = 0
    ticks_received: int = 0
    epochs_finalized: int = 0
    protocol_errors: int = 0
    connection_timeouts: int = 0
    backpressure_engagements: int = 0
    acks_deferred: int = 0
    heartbeats: int = 0

    def as_dict(self) -> Dict[str, int]:
        """The counters as a plain JSON-serializable mapping."""
        return dict(self.__dict__)


def report_to_json(report: EpochReport) -> Dict:
    """An :class:`EpochReport` as the query socket serves it.

    ``signature`` is the exact :func:`~repro.testing.report_signature`
    (tuples become JSON arrays), so remote consumers can assert bit-identity
    without shipping report objects across the wire.
    """
    return {
        "epoch": report.epoch,
        "detected_links": [str(link) for link in report.detected_links],
        "top_links": [[str(link), votes] for link, votes in report.top_links(10)],
        "num_paths_analyzed": report.num_paths_analyzed,
        "summary": report.summary(),
        "signature": report_signature(report),
    }


# ---------------------------------------------------------------------------
# ingest cores
# ---------------------------------------------------------------------------
class ServiceIngestCore:
    """Feed decoded evidence runs into a real streaming service.

    Works with :class:`Zero07Service` and :class:`ShardedService` alike —
    both expose ``ingest_run``/``ingest``/``report``.  The analyzer owns the
    chunk ordering; this core just materializes each chunk's events and
    hands them over ``owned=True`` (the decode allocated them for exactly
    this consumer).
    """

    mode = "events"

    def __init__(self, service) -> None:
        self.service = service

    @property
    def last_finalized(self) -> Optional[int]:
        """The newest epoch the service has closed."""
        return self.service.last_finalized_epoch

    def append_chunk(self, run: WireRun, remap: Optional[LinkRemap]) -> None:
        """Ingest one in-order chunk (events are materialized here)."""
        self.service.ingest_run(
            run.epoch, run.materialize(), owned=True, seqs=run.seqs
        )

    def append_events(self, epoch: int, events: List, seqs) -> None:
        """Ingest an already-materialized (e.g. trimmed) run."""
        self.service.ingest_run(epoch, events, owned=True, seqs=seqs)

    def tick(self, epoch: int) -> None:
        """Close ``epoch`` (and any gap epochs before it)."""
        self.service.ingest(EpochTick(epoch))

    def report(self, epoch: Optional[int] = None) -> EpochReport:
        """The service's report for ``epoch`` (mid-epoch queries included)."""
        return self.service.report(epoch)

    def describe(self) -> Dict:
        """Mode and service shape, for ``meta.json`` and the query socket."""
        service = self.service
        return {
            "mode": self.mode,
            "service": type(service).__name__,
            "engine": getattr(service, "engine", None),
            "num_shards": getattr(service, "num_shards", 1),
        }

    def close(self) -> None:
        """Release service resources (worker processes, pipes)."""
        close = getattr(self.service, "close", None)
        if close is not None:
            close()


class ColumnarIngestCore:
    """Fold wire chunks into merged columns; build reports without objects.

    The hot path appends each chunk's columns (link ids remapped onto one
    shared :class:`LinkIndex`) to an :class:`EvidenceColumnStore` and keeps
    the raw :class:`WireRun` for replay.  Reports come from
    ``build_tally`` + ``analyze_tally`` — bit-identical to an
    ``ingest_batch`` replay by the store's contract.  Epochs the store marks
    dirty (reordering the chunk sort could not hide, duplicates that slipped
    the trim, seq-less updates) replay their retained chunks through a
    throwaway :class:`Zero07Service`, whose duplicate/out-of-order tolerance
    is the correctness oracle.  Arrays engine only.
    """

    mode = "columns"

    def __init__(
        self,
        blame_config: Optional[BlameConfig] = None,
        vote_policy: VotePolicy = "inverse_hops",
        retain_reports: int = 16,
    ) -> None:
        self._blame_config = blame_config or BlameConfig()
        self._vote_policy: VotePolicy = vote_policy
        self._retain_reports = retain_reports
        self._link_index = LinkIndex()
        self._store = EvidenceColumnStore(self._link_index, vote_policy)
        self._agent = AnalysisAgent(
            blame_config=self._blame_config,
            vote_policy=vote_policy,
            engine="arrays",
            link_index=self._link_index,
        )
        #: per-epoch retained chunks, arrival order, for dirty-epoch replay.
        self._retained: Dict[int, List] = {}
        self._final_reports: Dict[int, EpochReport] = {}
        self._last_finalized: Optional[int] = None
        #: epochs that replayed instead of folding columns (visible in stats).
        self.replayed_epochs = 0

    @property
    def last_finalized(self) -> Optional[int]:
        """The newest epoch closed by a tick barrier."""
        return self._last_finalized

    def append_chunk(self, run: WireRun, remap: Optional[LinkRemap]) -> None:
        """Fold one in-order chunk's columns into the epoch's store."""
        if remap is None:
            raise ValueError("columnar core needs each connection's LinkRemap")
        self._retained.setdefault(run.epoch, []).append(("run", run, None))
        self._store.append_columns(run.epoch, run, remap.ids(run.lids))

    def append_events(self, epoch: int, events: List, seqs) -> None:
        """Fold an already-materialized (e.g. trimmed) run into the store."""
        self._retained.setdefault(epoch, []).append(("events", events, seqs))
        self._store.append_run(epoch, events, seqs=np.asarray(seqs, dtype=np.int64))

    def _replay_service(self, epoch: int) -> Zero07Service:
        service = Zero07Service(
            blame_config=self._blame_config,
            vote_policy=self._vote_policy,
            engine="arrays",
        )
        for kind, payload, seqs in self._retained.get(epoch, []):
            events = payload.materialize() if kind == "run" else payload
            service.ingest_batch(events, owned=(kind == "run"))
        return service

    def _materialize(self, epoch: int) -> EpochReport:
        if self._store.is_clean(epoch):
            tally = self._store.build_tally(epoch)
            if tally is not None:
                return self._agent.analyze_tally(epoch, tally)
        self.replayed_epochs += 1
        return self._replay_service(epoch).report(epoch)

    def tick(self, epoch: int) -> None:
        """Close every epoch up to ``epoch``, caching final reports."""
        if self._last_finalized is not None and epoch <= self._last_finalized:
            return
        start = (
            self._last_finalized + 1
            if self._last_finalized is not None
            else min(
                (e for e in self._retained if e <= epoch), default=epoch
            )
        )
        for e in range(start, epoch + 1):
            report = self._materialize(e)
            self._final_reports[e] = report
            while len(self._final_reports) > self._retain_reports:
                del self._final_reports[next(iter(self._final_reports))]
            self._last_finalized = e
            self._store.pop(e)
            self._retained.pop(e, None)

    def report(self, epoch: Optional[int] = None) -> EpochReport:
        """Final report if closed, else a mid-epoch materialization."""
        if epoch is None:
            open_epochs = self._retained.keys()
            if open_epochs:
                epoch = max(open_epochs)
            elif self._last_finalized is not None:
                epoch = self._last_finalized
            else:
                epoch = 0
        if epoch in self._final_reports:
            return self._final_reports[epoch]
        if self._last_finalized is not None and epoch <= self._last_finalized:
            raise ReportUnavailableError(
                epoch, self._last_finalized, self._retain_reports
            )
        return self._materialize(epoch)

    def describe(self) -> Dict:
        """Mode and analysis shape, for ``meta.json`` and the query socket."""
        return {
            "mode": self.mode,
            "service": "columnar",
            "engine": "arrays",
            "num_shards": 1,
        }

    def close(self) -> None:
        """Nothing to release (no worker processes)."""


# ---------------------------------------------------------------------------
# staging
# ---------------------------------------------------------------------------
class _EpochStage:
    """Out-of-order chunks of one open epoch, keyed by first sequence."""

    __slots__ = ("chunks", "next_seq", "ticked", "staged_bytes")

    def __init__(self) -> None:
        self.chunks: Dict[int, Tuple[WireRun, Optional[LinkRemap]]] = {}
        self.next_seq = 0
        self.ticked: set = set()
        self.staged_bytes = 0


class _Connection:
    """Per-connection transport state."""

    __slots__ = (
        "writer",
        "decoder",
        "remap",
        "agent_id",
        "acked_bytes",
        "deferred_acks",
        "reader_state",
    )

    def __init__(self, writer) -> None:
        self.writer = writer
        self.decoder = WireDecoder()
        self.remap: Optional[LinkRemap] = None
        self.agent_id: Optional[str] = None
        self.acked_bytes = 0
        self.deferred_acks: List[Tuple[int, int, int]] = []
        self.reader_state = FrameReader()


class FleetAnalyzer:
    """Accepts agent connections and drives one ingest core.

    Use :meth:`run` inside an event loop, or :func:`start_analyzer_thread`
    for a blocking host (tests, the fleet runner's in-process mode).  The
    instance is single-use: once shut down it does not restart.
    """

    def __init__(
        self,
        core,
        expected_agents: int,
        credit_bytes: int = 8 * 1024 * 1024,
        stage_limit_bytes: int = 64 * 1024 * 1024,
        idle_timeout: float = 30.0,
        handshake_timeout: float = 10.0,
    ) -> None:
        if expected_agents < 1:
            raise ValueError("expected_agents must be >= 1")
        self.core = core
        self.expected_agents = expected_agents
        self.credit_bytes = credit_bytes
        self.stage_limit_bytes = stage_limit_bytes
        self.idle_timeout = idle_timeout
        self.handshake_timeout = handshake_timeout
        self.stats = AnalyzerStats()
        #: agent_id -> {"acked": {epoch: seq}, "connects": int, "ticked": int}
        self.agents: Dict[str, Dict] = {}
        self._stages: Dict[int, _EpochStage] = {}
        self._staged_bytes = 0
        self._backpressured = False
        self._connections: List[_Connection] = []
        self._shutdown = asyncio.Event()
        self._servers: List[asyncio.base_events.Server] = []
        self._unix_paths: List[str] = []
        self.bound_endpoint: Optional[Endpoint] = None
        self.bound_query_endpoint: Optional[Endpoint] = None

    # -- lifecycle ----------------------------------------------------
    async def start(
        self, endpoint: Endpoint, query_endpoint: Optional[Endpoint] = None
    ) -> Tuple[Endpoint, Optional[Endpoint]]:
        """Bind the evidence listener (and optionally the query listener).

        Returns the actually-bound endpoints — port 0 resolves to the
        kernel-assigned port, which is how the runner discovers addresses.
        """
        self.bound_endpoint = await self._listen(endpoint, self._serve_agent)
        if query_endpoint is not None:
            self.bound_query_endpoint = await self._listen(
                query_endpoint, self._serve_query
            )
        return self.bound_endpoint, self.bound_query_endpoint

    #: StreamReader buffer bound.  asyncio's 64 KiB default makes
    #: ``reader.read`` return in tiny pieces with flow-control churn on
    #: every boundary; evidence frames run to hundreds of KiB, so give the
    #: reader room to coalesce whole frames per wakeup.
    READ_LIMIT = 8 * 1024 * 1024

    async def _listen(self, endpoint: Endpoint, handler) -> Endpoint:
        if endpoint.kind == "tcp":
            server = await asyncio.start_server(
                handler,
                host=endpoint.host or "127.0.0.1",
                port=endpoint.port,
                limit=self.READ_LIMIT,
            )
            host, port = server.sockets[0].getsockname()[:2]
            bound = Endpoint(kind="tcp", host=host, port=port)
        else:
            server = await asyncio.start_unix_server(
                handler, path=endpoint.path, limit=self.READ_LIMIT
            )
            self._unix_paths.append(endpoint.path)
            bound = endpoint
        self._servers.append(server)
        return bound

    async def run(self) -> None:
        """Serve until :meth:`shutdown` (or a query-socket shutdown)."""
        await self._shutdown.wait()
        for server in self._servers:
            server.close()
            await server.wait_closed()
        for connection in list(self._connections):
            try:
                connection.writer.close()
            except Exception:
                pass
        for path in self._unix_paths:
            try:
                os.unlink(path)
            except OSError:
                pass
        self.core.close()

    def shutdown(self) -> None:
        """Ask :meth:`run` to wind the servers down."""
        self._shutdown.set()

    # -- agent connections --------------------------------------------
    async def _serve_agent(self, reader, writer) -> None:
        self.stats.connections_accepted += 1
        connection = _Connection(writer)
        self._connections.append(connection)
        try:
            await self._agent_loop(reader, connection)
        except (FleetProtocolError, WireProtocolError) as exc:
            self.stats.protocol_errors += 1
            await self._send_error(connection, exc)
        except (ConnectionError, asyncio.IncompleteReadError):
            self.stats.protocol_errors += 1
        except asyncio.TimeoutError:
            self.stats.connection_timeouts += 1
        finally:
            self._connections.remove(connection)
            try:
                writer.close()
            except Exception:
                pass

    async def _send_error(self, connection: _Connection, exc: Exception) -> None:
        code = {
            VersionMismatchError: "version-mismatch",
            HandshakeError: "handshake",
            WireProtocolError: "wire",
        }.get(type(exc), "protocol")
        frame = protocol.encode_frame(
            protocol.FRAME_ERROR, protocol.encode_error(code, str(exc))
        )
        try:
            connection.writer.write(frame)
            await asyncio.wait_for(connection.writer.drain(), timeout=2.0)
        except Exception:
            pass  # best-effort courtesy; the close is the real signal

    async def _agent_loop(self, reader, connection: _Connection) -> None:
        frames = self._frame_stream(reader, connection)
        # handshake: the first frame must be a version-matched HELLO.
        frame = await asyncio.wait_for(
            frames.__anext__(), timeout=self.handshake_timeout
        )
        frame_type, payload = frame
        if frame_type != protocol.FRAME_HELLO:
            raise HandshakeError(
                f"expected HELLO as the first frame, got type {frame_type}"
            )
        hello = protocol.decode_hello(payload)
        agent_id = hello["agent_id"]
        connection.agent_id = agent_id
        connection.remap = (
            LinkRemap(connection.decoder, self.core._link_index)
            if isinstance(self.core, ColumnarIngestCore)
            else None
        )
        record = self.agents.setdefault(
            agent_id, {"acked": {}, "connects": 0, "ticks": 0}
        )
        record["connects"] += 1
        record["epoch_watermark"] = hello.get("epoch_watermark", -1)
        self.stats.handshakes += 1
        welcome = protocol.encode_frame(
            protocol.FRAME_WELCOME,
            protocol.encode_welcome(self.credit_bytes, record["acked"]),
        )
        connection.writer.write(welcome)
        await connection.writer.drain()

        while True:
            try:
                frame_type, payload = await asyncio.wait_for(
                    frames.__anext__(), timeout=self.idle_timeout
                )
            except StopAsyncIteration:
                return  # clean EOF at a frame boundary
            self.stats.frames_received += 1
            if frame_type == protocol.FRAME_EVIDENCE:
                await self._on_evidence(connection, payload)
            elif frame_type == protocol.FRAME_TICK:
                self._on_tick(connection, protocol.decode_tick(payload))
                await self._release_deferred_acks()
            elif frame_type == protocol.FRAME_HEARTBEAT:
                self.stats.heartbeats += 1
                connection.writer.write(
                    protocol.encode_frame(protocol.FRAME_HEARTBEAT)
                )
                await connection.writer.drain()
            elif frame_type == protocol.FRAME_BYE:
                return
            elif frame_type == protocol.FRAME_ERROR:
                raise protocol.decode_error(payload)
            else:
                raise FleetProtocolError(
                    f"agent sent unexpected frame type {frame_type}"
                )

    async def _frame_stream(self, reader, connection: _Connection):
        """Yield frames; raise TruncatedFrameError on a mid-frame EOF."""
        frame_reader = connection.reader_state
        while True:
            for frame in frame_reader.frames():
                yield frame
            data = await reader.read(1 << 20)
            if not data:
                frame_reader.close()  # raises if the peer died mid-frame
                return
            self.stats.bytes_received += len(data)
            frame_reader.feed(data)

    # -- evidence staging ---------------------------------------------
    async def _on_evidence(self, connection: _Connection, payload: bytes) -> None:
        run = connection.decoder.decode_columns(payload)
        epoch = run.epoch
        last_finalized = self.core.last_finalized
        if last_finalized is not None and epoch <= last_finalized:
            self.stats.late_chunks += 1
            await self._ack(connection, epoch, run.last_seq, len(payload))
            return
        stage = self._stages.get(epoch)
        if stage is None:
            stage = self._stages[epoch] = _EpochStage()
        self._stage_chunk(stage, run, connection.remap)
        self._flush_ready(epoch, stage)
        if self._backpressured and self._staged_bytes <= self.stage_limit_bytes:
            # a flush drained the backlog: wake the stalled senders now, not
            # at the next tick — they may be blocked on their credit windows.
            await self._release_deferred_acks()
        watermark = run.last_seq
        acked = self.agents[connection.agent_id]["acked"]
        if watermark > acked.get(epoch, -1):
            acked[epoch] = watermark
        if self._staged_bytes > self.stage_limit_bytes:
            if not self._backpressured:
                self._backpressured = True
                self.stats.backpressure_engagements += 1
            self.stats.acks_deferred += 1
            connection.deferred_acks.append((epoch, watermark, len(payload)))
        else:
            await self._ack(connection, epoch, watermark, len(payload))

    def _stage_chunk(
        self, stage: _EpochStage, run: WireRun, remap: Optional[LinkRemap]
    ) -> None:
        self.stats.chunks_staged += 1
        self.stats.evidence_events += run.n_events
        if run.n_events == 0:
            return
        if run.last_seq < stage.next_seq:
            self.stats.duplicate_chunks += 1  # fully behind the watermark
            return
        first = run.first_seq
        if first in stage.chunks:
            old_run, _ = stage.chunks[first]
            stage.staged_bytes -= old_run.nbytes
            self._staged_bytes -= old_run.nbytes
            self.stats.duplicate_chunks += 1
        stage.chunks[first] = (run, remap)
        stage.staged_bytes += run.nbytes
        self._staged_bytes += run.nbytes

    def _append_chunk(self, stage: _EpochStage, run: WireRun, remap) -> None:
        if run.first_seq < stage.next_seq:
            # redelivery overlaps the flushed prefix: trim to fresh events.
            self.stats.trimmed_chunks += 1
            cut = int(np.searchsorted(run.seqs, stage.next_seq))
            events = run.materialize()[cut:]
            if events:
                self.core.append_events(run.epoch, events, run.seqs[cut:])
        else:
            self.core.append_chunk(run, remap)
        self.stats.chunks_flushed += 1
        if run.last_seq >= stage.next_seq:
            stage.next_seq = run.last_seq + 1

    def _flush_ready(self, epoch: int, stage: _EpochStage) -> None:
        """Flush the maximal in-order chunk prefix into the core."""
        chunks = stage.chunks
        while chunks:
            first = min(chunks)  # chunk count stays small: O(agents)
            if first > stage.next_seq:
                return
            run, remap = chunks.pop(first)
            stage.staged_bytes -= run.nbytes
            self._staged_bytes -= run.nbytes
            self._append_chunk(stage, run, remap)

    def _flush_all(self, epoch: int, stage: _EpochStage) -> None:
        """Tick-barrier flush: everything staged, in sequence order."""
        for first in sorted(stage.chunks):
            run, remap = stage.chunks[first]
            stage.staged_bytes -= run.nbytes
            self._staged_bytes -= run.nbytes
            self._append_chunk(stage, run, remap)
        stage.chunks.clear()

    def _on_tick(self, connection: _Connection, epoch: int) -> None:
        self.stats.ticks_received += 1
        self.agents[connection.agent_id]["ticks"] += 1
        last_finalized = self.core.last_finalized
        if last_finalized is not None and epoch <= last_finalized:
            return  # re-tick after reconnect: already closed, idempotent
        stage = self._stages.get(epoch)
        if stage is None:
            stage = self._stages[epoch] = _EpochStage()
        stage.ticked.add(connection.agent_id)
        if len(stage.ticked) < self.expected_agents:
            return
        # barrier complete: every expected agent ticked, so (per-connection
        # FIFO) every chunk of this and every earlier epoch has arrived.
        for e in sorted(e for e in self._stages if e <= epoch):
            self._flush_all(e, self._stages.pop(e))
        self.core.tick(epoch)
        finalized = self.core.last_finalized
        self.stats.epochs_finalized = (
            finalized + 1 if finalized is not None else 0
        )

    async def _ack(
        self, connection: _Connection, epoch: int, seq: int, nbytes: int
    ) -> None:
        connection.acked_bytes += nbytes
        connection.writer.write(
            protocol.encode_frame(
                protocol.FRAME_ACK,
                protocol.encode_ack(epoch, seq, connection.acked_bytes),
            )
        )
        await connection.writer.drain()

    async def _release_deferred_acks(self) -> None:
        if self._staged_bytes > self.stage_limit_bytes:
            return
        self._backpressured = False
        for connection in self._connections:
            while connection.deferred_acks:
                epoch, seq, nbytes = connection.deferred_acks.pop(0)
                try:
                    await self._ack(connection, epoch, seq, nbytes)
                except Exception:
                    break  # the reconnect path re-acks via WELCOME watermarks

    # -- query socket --------------------------------------------------
    async def _serve_query(self, reader, writer) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                try:
                    request = json.loads(line.decode("utf-8"))
                    response = self._handle_query(request)
                except Exception as exc:  # malformed request → error reply
                    response = {"ok": False, "error": str(exc)}
                writer.write(
                    json.dumps(response, sort_keys=True).encode("utf-8") + b"\n"
                )
                await writer.drain()
                if response.get("shutdown"):
                    return
        except ConnectionError:
            return
        finally:
            try:
                writer.close()
            except Exception:
                pass

    def _handle_query(self, request: Dict) -> Dict:
        command = request.get("cmd")
        if command == "ping":
            return {"ok": True, "pong": True}
        if command == "stats":
            return {
                "ok": True,
                "stats": self.stats.as_dict(),
                "agents": {
                    agent_id: {
                        "connects": record["connects"],
                        "ticks": record["ticks"],
                        "acked": {
                            str(epoch): seq
                            for epoch, seq in record["acked"].items()
                        },
                    }
                    for agent_id, record in self.agents.items()
                },
                "staged_bytes": self._staged_bytes,
                "last_finalized": self.core.last_finalized,
            }
        if command == "describe":
            description = self.core.describe()
            description.update(
                {
                    "protocol_version": protocol.FLEET_PROTOCOL_VERSION,
                    "expected_agents": self.expected_agents,
                    "credit_bytes": self.credit_bytes,
                }
            )
            return {"ok": True, "describe": description}
        if command == "report":
            epoch = request.get("epoch")
            try:
                report = self.core.report(epoch)
            except ReportUnavailableError as exc:
                return {"ok": False, "error": str(exc)}
            return {"ok": True, "report": report_to_json(report)}
        if command == "shutdown":
            self.shutdown()
            return {"ok": True, "shutdown": True}
        raise ValueError(f"unknown query command {command!r}")


# ---------------------------------------------------------------------------
# blocking host helper
# ---------------------------------------------------------------------------
class AnalyzerThread:
    """Run a :class:`FleetAnalyzer` on a dedicated event-loop thread.

    The constructor blocks until the listeners are bound, so the caller can
    read :attr:`endpoint` / :attr:`query_endpoint` immediately.  ``stop()``
    is idempotent and joins the thread.
    """

    def __init__(
        self,
        analyzer: FleetAnalyzer,
        endpoint: Endpoint,
        query_endpoint: Optional[Endpoint] = None,
    ) -> None:
        import threading

        self.analyzer = analyzer
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self.endpoint: Optional[Endpoint] = None
        self.query_endpoint: Optional[Endpoint] = None

        def main() -> None:
            try:
                asyncio.run(self._run(endpoint, query_endpoint))
            except BaseException as exc:  # surface bind errors to the caller
                self._error = exc
                self._ready.set()

        self._thread = threading.Thread(
            target=main, name="fleet-analyzer", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._error is not None:
            raise self._error

    async def _run(self, endpoint, query_endpoint) -> None:
        self._loop = asyncio.get_running_loop()
        bound, query_bound = await self.analyzer.start(endpoint, query_endpoint)
        self.endpoint = bound
        self.query_endpoint = query_bound
        self._ready.set()
        await self.analyzer.run()

    def stop(self, timeout: float = 10.0) -> None:
        """Shut the analyzer down and join its thread."""
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.analyzer.shutdown)
        self._thread.join(timeout)
