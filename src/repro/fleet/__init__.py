"""``repro.fleet``: distributed evidence ingestion over real sockets.

The paper's deployment shape, made literal: per-host monitoring agents
stream evidence to one centralized analyzer over the network, and the
analyzer answers "which link is dropping packets" while epochs are still
open.  This package adds the missing wire:

* :mod:`repro.fleet.protocol` — length-prefixed framing, the versioned
  HELLO/WELCOME handshake, heartbeats, and the
  :class:`~repro.fleet.protocol.FleetProtocolError` taxonomy (a peer death
  is always a loud error, never a hang).
* :mod:`repro.fleet.analyzer` — the asyncio analyzer front-end: per-agent
  chunk reassembly, tick barriers, credit-based backpressure, two ingest
  cores (full-service ``events`` and arrays-only columnar ``columns``),
  and a newline-JSON query socket for mid-epoch reports.
* :mod:`repro.fleet.agent` — the synchronous agent client: bounded send
  window, at-least-once redelivery from acked watermarks, reconnect with
  jittered exponential backoff; a run interrupted by reconnects finalizes
  bit-identically to an uninterrupted one.
* :mod:`repro.fleet.runner` — ``repro fleet run``: N agents + analyzer on
  localhost, scripted mid-run kills, convergence, and a self-describing
  run directory (``meta.json`` / ``summary.json`` / per-agent JSONL).

The exported names are snapshot-tested (``tests/test_api_surface.py``).
"""

from repro.fleet.agent import AgentStats, FleetAgentClient, KILL_EXIT_CODE
from repro.fleet.analyzer import (
    AnalyzerStats,
    AnalyzerThread,
    ColumnarIngestCore,
    FleetAnalyzer,
    ServiceIngestCore,
)
from repro.fleet.protocol import (
    FLEET_MAGIC,
    FLEET_PROTOCOL_VERSION,
    Endpoint,
    FleetProtocolError,
    FrameReader,
    FrameTooLargeError,
    HandshakeError,
    PeerError,
    TruncatedFrameError,
    UnknownFrameError,
    VersionMismatchError,
    parse_endpoint,
)
from repro.fleet.runner import (
    FleetQueryClient,
    FleetRunConfig,
    run_fleet,
    validate_run_dir,
)

__all__ = [
    # protocol
    "FLEET_MAGIC",
    "FLEET_PROTOCOL_VERSION",
    "Endpoint",
    "parse_endpoint",
    "FrameReader",
    "FleetProtocolError",
    "TruncatedFrameError",
    "FrameTooLargeError",
    "UnknownFrameError",
    "HandshakeError",
    "VersionMismatchError",
    "PeerError",
    # analyzer
    "FleetAnalyzer",
    "AnalyzerThread",
    "AnalyzerStats",
    "ServiceIngestCore",
    "ColumnarIngestCore",
    # agent
    "FleetAgentClient",
    "AgentStats",
    "KILL_EXIT_CODE",
    # runner
    "FleetRunConfig",
    "run_fleet",
    "validate_run_dir",
    "FleetQueryClient",
]
