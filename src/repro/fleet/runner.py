"""The fleet experiment runner: N agent processes + one analyzer, one run dir.

:func:`run_fleet` launches a :class:`~repro.fleet.analyzer.FleetAnalyzer`
and ``agents`` sender processes on localhost (as ``repro.cli fleet ...``
subprocesses), optionally kills one agent mid-run (the scripted failure),
waits for every epoch to finalize, and writes a self-describing run
directory:

* ``meta.json`` — the resolved config, endpoints and launch commands;
* ``summary.json`` — convergence, per-epoch report signatures, detected
  links vs the generator's ground truth, analyzer/agent stats, the kill
  record, and the replay-equivalence verdict;
* ``agent-<i>.jsonl`` — each agent's lifecycle log (connects, reconnects,
  redeliveries, ticks), one JSON object per line;
* ``analyzer.log`` / ``agent-<i>.log`` — raw subprocess output.

Every process regenerates its slice of the workload deterministically from
the shared ``(fabric, profile, timeline, seed, events_per_epoch)`` tuple,
so the runner can verify the distributed run against a single-process
``ingest_batch`` replay bit-for-bit (``verify_replay``) without shipping
events between processes twice.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.api.service import Zero07Service
from repro.fleet.agent import KILL_EXIT_CODE
from repro.fleet.protocol import Endpoint, parse_endpoint
from repro.loadgen import EvidenceLoadGenerator, WorkloadProfile
from repro.netsim.script import ScenarioScript
from repro.testing import report_signature
from repro.topology.elements import LinkLevel

#: summary.json schema tag; bump when the run-dir contract changes.
RUN_SCHEMA = "fleet-run-v1"

FLEET_TIMELINES = ("none", "flap", "burst")


def fleet_timeline(name: str) -> Optional[ScenarioScript]:
    """The scripted failure timeline of a fleet run, by name.

    Shared by the runner, the agent CLI and the replay verifier — all three
    must resolve the identical script for the streams to line up.
    """
    if name == "none":
        return None
    script = ScenarioScript()
    if name == "flap":
        script.flap(start=1, duration=2, drop_rate=1e-2, level=LinkLevel.LEVEL1)
    elif name == "burst":
        script.burst(
            start=1, duration=2, level=LinkLevel.LEVEL1, num_links=2,
            drop_rate=1e-2,
        )
    else:
        raise ValueError(f"unknown fleet timeline {name!r}")
    return script


def build_generator(
    fabric: str,
    profile: str,
    timeline: str,
    seed: int,
    events_per_epoch: int,
) -> EvidenceLoadGenerator:
    """The deterministic workload every fleet process regenerates."""
    return EvidenceLoadGenerator(
        fabric=fabric,
        profile=WorkloadProfile.named(profile),
        script=fleet_timeline(timeline),
        seed=seed,
        events_per_epoch=events_per_epoch,
    )


def json_signature(report) -> List:
    """A report's signature round-tripped through JSON (tuples → lists).

    The query socket serves signatures as JSON, so equality checks against
    locally computed signatures must normalize both sides the same way.
    """
    return json.loads(json.dumps(report_signature(report)))


class FleetQueryClient:
    """Blocking newline-JSON client of the analyzer's query socket."""

    def __init__(self, endpoint: Endpoint, timeout: float = 10.0) -> None:
        self._sock = endpoint.connect(timeout=timeout)
        self._reader = self._sock.makefile("rb")

    def request(self, payload: Dict) -> Dict:
        """One request/response round trip."""
        self._sock.sendall(
            json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
        )
        line = self._reader.readline()
        if not line:
            raise ConnectionError("analyzer query socket closed")
        return json.loads(line.decode("utf-8"))

    def close(self) -> None:
        try:
            self._reader.close()
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "FleetQueryClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class FleetRunConfig:
    """Everything one localhost fleet run needs (all of it deterministic)."""

    run_dir: str
    agents: int = 4
    shards: int = 2
    transport: str = "tcp"  # tcp | unix
    mode: str = "events"  # events (full service) | columns (arrays turbo)
    engine: str = "arrays"
    backend: str = "inline"
    workers: Optional[int] = None
    fabric: str = "tiny"
    profile: str = "skewed"
    timeline: str = "none"
    epochs: int = 3
    events_per_epoch: int = 4000
    seed: int = 7
    chunk_events: int = 1024
    kill_agent: Optional[int] = None
    kill_after_events: Optional[int] = None
    verify_replay: bool = True
    timeout: float = 180.0

    def __post_init__(self) -> None:
        if self.agents < 1:
            raise ValueError("agents must be >= 1")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.transport not in ("tcp", "unix"):
            raise ValueError(f"unknown transport {self.transport!r}")
        if self.mode not in ("events", "columns"):
            raise ValueError(f"unknown analyzer mode {self.mode!r}")
        if self.mode == "columns" and self.engine != "arrays":
            raise ValueError("the columns analyzer mode is arrays-only")
        if self.engine not in ("arrays", "dicts"):
            raise ValueError(f"unknown engine {self.engine!r}")
        if self.timeline not in FLEET_TIMELINES:
            raise ValueError(f"unknown fleet timeline {self.timeline!r}")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.kill_agent is not None and not (
            0 <= self.kill_agent < self.agents
        ):
            raise ValueError("kill_agent must name a launched agent index")

    def as_dict(self) -> Dict:
        """The config as a JSON-serializable mapping."""
        return asdict(self)


def _agent_command(
    config: FleetRunConfig,
    index: int,
    endpoint: str,
    run_dir: Path,
    fail_after_events: Optional[int],
) -> List[str]:
    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "fleet",
        "agent",
        "--agent-id",
        f"agent-{index}",
        "--connect",
        endpoint,
        "--agent-index",
        str(index),
        "--num-agents",
        str(config.agents),
        "--fabric",
        config.fabric,
        "--profile",
        config.profile,
        "--timeline",
        config.timeline,
        "--epochs",
        str(config.epochs),
        "--events-per-epoch",
        str(config.events_per_epoch),
        "--seed",
        str(config.seed),
        "--chunk-events",
        str(config.chunk_events),
        "--log",
        str(run_dir / f"agent-{index}.jsonl"),
    ]
    if fail_after_events is not None:
        command += ["--fail-after-events", str(fail_after_events)]
    return command


def _subprocess_env() -> Dict[str, str]:
    import repro

    src = str(Path(repro.__file__).parents[1])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    return env


def _launch(command: List[str], log_path: Path, env: Dict[str, str]):
    log = open(log_path, "ab")
    process = subprocess.Popen(
        command, stdout=log, stderr=subprocess.STDOUT, env=env
    )
    process._fleet_log_handle = log  # closed in _reap
    return process


def _reap(process) -> None:
    handle = getattr(process, "_fleet_log_handle", None)
    if handle is not None:
        handle.close()


def _terminate(process, grace: float = 5.0) -> None:
    if process.poll() is None:
        process.terminate()
        try:
            process.wait(timeout=grace)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait()
    _reap(process)


def _wait_ready(path: Path, process, deadline: float) -> Dict:
    while time.monotonic() < deadline:
        if path.exists():
            text = path.read_text()
            if text.endswith("\n"):  # written atomically, newline-terminated
                return json.loads(text)
        if process.poll() is not None:
            raise RuntimeError(
                f"analyzer exited with status {process.returncode} "
                "before binding its sockets"
            )
        time.sleep(0.05)
    raise TimeoutError("analyzer did not report readiness in time")


def _replay_signatures(config: FleetRunConfig) -> List[List]:
    """Per-epoch signatures of the single-process ``ingest_batch`` replay."""
    generator = build_generator(
        config.fabric,
        config.profile,
        config.timeline,
        config.seed,
        config.events_per_epoch,
    )
    service = Zero07Service(
        engine=config.engine, retain_reports=max(8, config.epochs)
    )
    for epoch in range(config.epochs):
        service.ingest_batch(generator.epoch_events(epoch, tick=True))
    return [
        json_signature(service.report(epoch)) for epoch in range(config.epochs)
    ]


def run_fleet(
    config: FleetRunConfig,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict:
    """Execute one localhost fleet run; returns the written summary."""

    def say(message: str) -> None:
        if progress is not None:
            progress(message)

    run_dir = Path(config.run_dir)
    run_dir.mkdir(parents=True, exist_ok=True)
    env = _subprocess_env()
    start = time.monotonic()
    deadline = start + config.timeout

    if config.transport == "tcp":
        bind = "tcp:127.0.0.1:0"
        query_bind = "tcp:127.0.0.1:0"
    else:
        bind = f"unix:{run_dir / 'evidence.sock'}"
        query_bind = f"unix:{run_dir / 'query.sock'}"
    ready_path = run_dir / "analyzer-ready.json"
    if ready_path.exists():
        ready_path.unlink()
    analyzer_command = [
        sys.executable,
        "-m",
        "repro.cli",
        "fleet",
        "analyzer",
        "--bind",
        bind,
        "--query-bind",
        query_bind,
        "--num-agents",
        str(config.agents),
        "--mode",
        config.mode,
        "--engine",
        config.engine,
        "--shards",
        str(config.shards),
        "--backend",
        config.backend,
        "--retain-reports",
        str(max(16, config.epochs)),
        "--ready-file",
        str(ready_path),
    ]
    if config.workers is not None:
        analyzer_command += ["--workers", str(config.workers)]

    meta = {
        "schema": RUN_SCHEMA,
        "created_at": time.time(),
        "config": config.as_dict(),
        "analyzer_command": analyzer_command,
    }
    (run_dir / "meta.json").write_text(
        json.dumps(meta, indent=2, sort_keys=True) + "\n"
    )

    analyzer = _launch(analyzer_command, run_dir / "analyzer.log", env)
    agents: Dict[int, object] = {}
    summary: Dict = {"schema": RUN_SCHEMA, "config": config.as_dict()}
    kill_record: Optional[Dict] = None
    try:
        ready = _wait_ready(ready_path, analyzer, deadline)
        evidence_endpoint = ready["evidence"]
        query_endpoint = parse_endpoint(ready["query"])
        meta["endpoints"] = ready
        (run_dir / "meta.json").write_text(
            json.dumps(meta, indent=2, sort_keys=True) + "\n"
        )
        say(f"analyzer ready at {evidence_endpoint}")

        kill_threshold = None
        if config.kill_agent is not None:
            share = (config.epochs * config.events_per_epoch) // max(
                1, config.agents
            )
            kill_threshold = (
                config.kill_after_events
                if config.kill_after_events is not None
                else max(1, share // 2)
            )
        for index in range(config.agents):
            fail_after = (
                kill_threshold if index == config.kill_agent else None
            )
            command = _agent_command(
                config, index, evidence_endpoint, run_dir, fail_after
            )
            agents[index] = _launch(
                command, run_dir / f"agent-{index}.log", env
            )
        say(f"launched {config.agents} agent(s)")

        if config.kill_agent is not None:
            victim = agents[config.kill_agent]
            while victim.poll() is None:
                if time.monotonic() > deadline:
                    raise TimeoutError("scripted kill never fired")
                time.sleep(0.05)
            _reap(victim)
            killed_at = time.monotonic()
            relaunch = _agent_command(
                config,
                config.kill_agent,
                evidence_endpoint,
                run_dir,
                None,
            )
            agents[config.kill_agent] = _launch(
                relaunch, run_dir / f"agent-{config.kill_agent}.log", env
            )
            kill_record = {
                "agent": config.kill_agent,
                "fail_after_events": kill_threshold,
                "exit_code": victim.returncode,
                "exit_code_expected": KILL_EXIT_CODE,
                "relaunched": True,
            }
            say(
                f"agent-{config.kill_agent} died with status "
                f"{victim.returncode}; relaunched"
            )

        exit_codes: Dict[int, int] = {}
        for index, process in agents.items():
            remaining = max(0.1, deadline - time.monotonic())
            try:
                exit_codes[index] = process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                raise TimeoutError(f"agent-{index} did not finish in time")
            finally:
                _reap(process)
        say("all agents drained and exited")

        query = FleetQueryClient(query_endpoint)
        try:
            while True:
                stats = query.request({"cmd": "stats"})
                if stats["last_finalized"] == config.epochs - 1:
                    break
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        "analyzer never finalized the last epoch "
                        f"(stuck at {stats['last_finalized']})"
                    )
                time.sleep(0.05)
            if kill_record is not None:
                kill_record["recovery_seconds"] = time.monotonic() - killed_at
            describe = query.request({"cmd": "describe"})["describe"]
            generator = build_generator(
                config.fabric,
                config.profile,
                config.timeline,
                config.seed,
                config.events_per_epoch,
            )
            epochs: List[Dict] = []
            for epoch in range(config.epochs):
                response = query.request({"cmd": "report", "epoch": epoch})
                if not response.get("ok"):
                    raise RuntimeError(
                        f"epoch {epoch} report unavailable: "
                        f"{response.get('error')}"
                    )
                report = response["report"]
                epochs.append(
                    {
                        "epoch": epoch,
                        "signature": report["signature"],
                        "detected": report["detected_links"],
                        "truth": [
                            str(link)
                            for link in generator.bad_links_for_epoch(epoch)
                        ],
                    }
                )
            summary["analyzer"] = {
                "stats": stats["stats"],
                "agents": stats["agents"],
                "describe": describe,
            }
            query.request({"cmd": "shutdown"})
        finally:
            query.close()
        analyzer_exit = analyzer.wait(timeout=30)
        _reap(analyzer)

        replay_equivalent: Optional[bool] = None
        if config.verify_replay:
            say("verifying against a single-process replay")
            reference = _replay_signatures(config)
            replay_equivalent = True
            for entry, expected in zip(epochs, reference):
                match = entry["signature"] == expected
                entry["replay_match"] = match
                replay_equivalent = replay_equivalent and match

        for entry in epochs:
            truth = set(entry["truth"])
            entry["truth_detected"] = truth <= set(entry["detected"])

        summary.update(
            {
                "endpoints": ready,
                "converged": True,
                "epochs": epochs,
                "agents": [
                    {
                        "agent_id": f"agent-{index}",
                        "index": index,
                        "exit_code": exit_codes[index],
                        "log": f"agent-{index}.jsonl",
                    }
                    for index in sorted(agents)
                ],
                "kill": kill_record,
                "replay_equivalent": replay_equivalent,
                "analyzer_exit_code": analyzer_exit,
                "duration_seconds": time.monotonic() - start,
            }
        )
        return summary
    except BaseException as error:
        summary.update(
            {
                "converged": False,
                "error": f"{type(error).__name__}: {error}",
                "kill": kill_record,
                "duration_seconds": time.monotonic() - start,
            }
        )
        raise
    finally:
        for process in agents.values():
            _terminate(process)
        _terminate(analyzer)
        (run_dir / "summary.json").write_text(
            json.dumps(summary, indent=2, sort_keys=True) + "\n"
        )


def validate_run_dir(path) -> Dict:
    """Check a fleet run directory against the run-dir contract.

    Raises ``ValueError`` naming the first violation; returns the parsed
    ``summary.json`` when the directory is valid.
    """
    run_dir = Path(path)
    if not run_dir.is_dir():
        raise ValueError(f"{run_dir} is not a directory")
    for name in ("meta.json", "summary.json"):
        if not (run_dir / name).is_file():
            raise ValueError(f"{run_dir} is missing {name}")
    meta = json.loads((run_dir / "meta.json").read_text())
    for key in ("schema", "config", "analyzer_command"):
        if key not in meta:
            raise ValueError(f"meta.json is missing {key!r}")
    summary = json.loads((run_dir / "summary.json").read_text())
    if summary.get("schema") != RUN_SCHEMA:
        raise ValueError(
            f"summary.json schema {summary.get('schema')!r} != {RUN_SCHEMA!r}"
        )
    for key in ("config", "converged", "duration_seconds"):
        if key not in summary:
            raise ValueError(f"summary.json is missing {key!r}")
    if not isinstance(summary["converged"], bool):
        raise ValueError("summary.json converged must be a boolean")
    if summary["converged"]:
        for key in ("endpoints", "epochs", "agents", "replay_equivalent"):
            if key not in summary:
                raise ValueError(f"summary.json is missing {key!r}")
        config = summary["config"]
        epochs = summary["epochs"]
        if len(epochs) != config["epochs"]:
            raise ValueError(
                f"summary has {len(epochs)} epoch entries, "
                f"config says {config['epochs']}"
            )
        for entry in epochs:
            for key in ("epoch", "signature", "detected", "truth"):
                if key not in entry:
                    raise ValueError(f"epoch entry is missing {key!r}")
        for agent in summary["agents"]:
            log = run_dir / agent["log"]
            if not log.is_file():
                raise ValueError(f"{run_dir} is missing {agent['log']}")
            with open(log, encoding="utf-8") as handle:
                for line_number, line in enumerate(handle, 1):
                    try:
                        json.loads(line)
                    except json.JSONDecodeError:
                        raise ValueError(
                            f"{agent['log']}:{line_number} is not JSON"
                        ) from None
    return summary
