"""The fleet agent client: a per-host evidence sender.

One :class:`FleetAgentClient` owns one socket to the analyzer and streams
its contiguous slice of each epoch's evidence as columnar
:class:`~repro.api.wire.WireEncoder` chunks, each wrapped in one EVIDENCE
frame.  Delivery is at-least-once with exactly-once effect:

* every chunk is retained (events + sequence numbers) until the analyzer's
  ACK watermark covers its last sequence number;
* sends block on the WELCOME credit window — unacked payload bytes never
  exceed the analyzer's grant, which is how analyzer backpressure (deferred
  acks) propagates to the sender;
* on any socket error the client reconnects with capped exponential backoff
  plus jitter, replays its HELLO, trims the retained chunks against the
  WELCOME's per-epoch acked watermarks, re-encodes the survivors on the
  fresh wire stream (the interned tables replay automatically) and re-sends
  them followed by its epoch ticks — ticks are idempotent at the analyzer,
  redelivered evidence is trimmed or deduplicated, so a run interrupted by
  any number of reconnects finalizes bit-identically to an uninterrupted
  one.

The client is synchronous (agents are sender processes, not servers); the
only concurrency is the ack pump interleaved with sends via ``select``.
"""

from __future__ import annotations

import json
import os
import random
import select
import socket
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.events import Evidence
from repro.api.wire import WireEncoder
from repro.fleet import protocol
from repro.fleet.protocol import (
    Endpoint,
    FleetProtocolError,
    FrameReader,
    HandshakeError,
    PeerError,
)

#: exit status of a scripted mid-run crash (``fail_after_events``).
KILL_EXIT_CODE = 17


@dataclass
class AgentStats:
    """Counters describing one agent client's lifetime."""

    connects: int = 0
    reconnects: int = 0
    chunks_sent: int = 0
    events_sent: int = 0
    bytes_sent: int = 0
    acks_received: int = 0
    redelivered_chunks: int = 0
    redelivered_events: int = 0
    credit_stalls: int = 0
    heartbeats: int = 0
    ticks_sent: int = 0

    def as_dict(self) -> Dict[str, int]:
        """The counters as a plain JSON-serializable mapping."""
        return dict(self.__dict__)


class _Retained:
    """One sent-but-unacked chunk, replayable on reconnect."""

    __slots__ = ("epoch", "events", "seqs", "last_seq", "nbytes")

    def __init__(
        self,
        epoch: int,
        events: List[Evidence],
        seqs: np.ndarray,
        nbytes: int,
    ) -> None:
        self.epoch = epoch
        self.events = events
        self.seqs = seqs
        self.last_seq = int(seqs[-1]) if len(seqs) else -1
        self.nbytes = nbytes


class FleetAgentClient:
    """Streams evidence chunks to a :class:`~repro.fleet.analyzer.FleetAnalyzer`.

    ``log`` (when given) receives one JSON-serializable dict per lifecycle
    event — the runner points it at the agent's per-run JSONL file.
    ``fail_after_events`` arms the scripted chaos kill: once that many
    events have been sent the process dies with :data:`KILL_EXIT_CODE`
    without closing the socket, exactly like a crashed host.
    """

    def __init__(
        self,
        agent_id: str,
        endpoint: Endpoint,
        chunk_events: int = 2048,
        connect_timeout: float = 10.0,
        io_timeout: float = 30.0,
        heartbeat_interval: float = 5.0,
        max_reconnect_attempts: int = 8,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        reconnect_seed: Optional[int] = None,
        fail_after_events: Optional[int] = None,
        log: Optional[Callable[[Dict], None]] = None,
    ) -> None:
        if chunk_events < 1:
            raise ValueError("chunk_events must be >= 1")
        self.agent_id = agent_id
        self.endpoint = endpoint
        self.chunk_events = chunk_events
        self.connect_timeout = connect_timeout
        self.io_timeout = io_timeout
        self.heartbeat_interval = heartbeat_interval
        self.max_reconnect_attempts = max_reconnect_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._rng = random.Random(
            reconnect_seed
            if reconnect_seed is not None
            else hash(agent_id) & 0xFFFFFFFF
        )
        self._fail_after_events = fail_after_events
        self._log = log
        self.stats = AgentStats()
        self.credit_bytes: Optional[int] = None
        self._encoder = WireEncoder(streams=1)
        self._sock: Optional[socket.socket] = None
        self._frames = FrameReader()
        self._unacked: Deque[_Retained] = deque()
        self._inflight_bytes = 0
        self._ticked: List[int] = []
        self._epoch_watermark = -1
        self._last_send = 0.0
        self._closed = False

    # -- lifecycle ----------------------------------------------------
    def connect(self) -> None:
        """Dial the analyzer and complete the HELLO/WELCOME handshake."""
        self._dial()
        self.stats.connects += 1
        self._emit("connect", endpoint=str(self.endpoint))

    def close(self) -> None:
        """Say BYE at a frame boundary and drop the socket."""
        if self._sock is not None:
            try:
                self._sock.sendall(protocol.encode_frame(protocol.FRAME_BYE))
            except OSError:
                pass
            self._teardown()
        self._closed = True
        self._emit("close")

    def __enter__(self) -> "FleetAgentClient":
        self.connect()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the send path ------------------------------------------------
    def send_run(
        self,
        epoch: int,
        events: Sequence[Evidence],
        seqs: Optional[Sequence[int]] = None,
    ) -> None:
        """Stream one epoch slice (strictly increasing seqs) as chunks."""
        events = events if isinstance(events, list) else list(events)
        if seqs is None:
            seqs = [event.seq for event in events]
        seq_array = np.asarray(seqs, dtype=np.int64)
        if len(seq_array) != len(events):
            raise ValueError("seqs must align with events")
        for lo in range(0, len(events), self.chunk_events):
            hi = lo + self.chunk_events
            self._send_chunk(epoch, events[lo:hi], seq_array[lo:hi])

    def _send_chunk(
        self, epoch: int, events: List[Evidence], seqs: np.ndarray
    ) -> None:
        if not events:
            return
        payload = self._encoder.encode_run(0, 0, epoch, events, seqs=seqs)
        retained = _Retained(epoch, events, seqs, len(payload))
        self._unacked.append(retained)
        frame = protocol.encode_frame(protocol.FRAME_EVIDENCE, payload)
        self._transmit(retained, frame)
        self.stats.chunks_sent += 1
        self.stats.events_sent += len(events)
        if (
            self._fail_after_events is not None
            and self.stats.events_sent >= self._fail_after_events
        ):
            # scripted chaos: die like a crashed host — no BYE, no close.
            self._emit("scripted-kill", events_sent=self.stats.events_sent)
            os._exit(KILL_EXIT_CODE)

    def _transmit(self, retained: _Retained, frame: bytes) -> None:
        """Send one framed chunk under the credit window, reconnecting as needed."""
        while True:
            try:
                self._ensure_connected()
                stalled = False
                while (
                    self.credit_bytes is not None
                    and self._inflight_bytes + retained.nbytes
                    > self.credit_bytes
                    and self._unacked[0] is not retained
                ):
                    if not stalled:
                        stalled = True
                        self.stats.credit_stalls += 1
                    self._pump(block=True)
                self._sock.sendall(frame)
                self._inflight_bytes += retained.nbytes
                self.stats.bytes_sent += len(frame)
                self._last_send = time.monotonic()
                self._pump(block=False)
                return
            except (OSError, FleetProtocolError):
                # the reconnect replay re-encodes and re-sends every unacked
                # chunk (this one included) on the fresh wire stream; the
                # stale frame must not be retried — its interned-table
                # prefix belongs to the dead stream.
                self._reconnect()
                return

    def tick(self, epoch: int) -> None:
        """Declare this agent's slice of ``epoch`` complete."""
        self._ticked.append(epoch)
        self._epoch_watermark = max(self._epoch_watermark, epoch)
        while True:
            try:
                self._ensure_connected()
                self._sock.sendall(
                    protocol.encode_frame(
                        protocol.FRAME_TICK, protocol.encode_tick(epoch)
                    )
                )
                self.stats.ticks_sent += 1
                self._emit("tick", epoch=epoch)
                return
            except (OSError, FleetProtocolError):
                self._reconnect()  # the replay re-sends every tick
                self.stats.ticks_sent += 1
                self._emit("tick", epoch=epoch, via="reconnect")
                return

    def drain(self) -> None:
        """Block until every sent chunk is acked (or reconnect/raise)."""
        while self._unacked:
            try:
                self._ensure_connected()
                self._pump(block=True)
            except (OSError, FleetProtocolError):
                self._reconnect()

    def sever(self) -> None:
        """Tear the transport down abruptly, mid-stream (chaos/test hook).

        The analyzer sees an unannounced EOF (a truncated frame if one was
        in flight); this end's next socket operation fails and takes the
        reconnect-and-redeliver path — exactly a yanked cable.
        """
        if self._sock is not None:
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    def heartbeat(self) -> None:
        """Send one HEARTBEAT (the analyzer echoes it)."""
        self._ensure_connected()
        self._sock.sendall(protocol.encode_frame(protocol.FRAME_HEARTBEAT))
        self.stats.heartbeats += 1

    @property
    def unacked_chunks(self) -> int:
        """Chunks sent but not yet covered by an ACK watermark."""
        return len(self._unacked)

    # -- socket plumbing ----------------------------------------------
    def _ensure_connected(self) -> None:
        if self._sock is None:
            raise ConnectionError("not connected")

    def _dial(self) -> None:
        sock = self.endpoint.connect(timeout=self.connect_timeout)
        sock.settimeout(self.io_timeout)
        self._sock = sock
        self._frames = FrameReader()
        hello = protocol.encode_frame(
            protocol.FRAME_HELLO,
            protocol.encode_hello(self.agent_id, self._epoch_watermark),
        )
        sock.sendall(hello)
        frame_type, payload = self._read_frame_blocking()
        if frame_type == protocol.FRAME_ERROR:
            raise protocol.decode_error(payload)
        if frame_type != protocol.FRAME_WELCOME:
            raise HandshakeError(
                f"expected WELCOME after HELLO, got frame type {frame_type}"
            )
        welcome = protocol.decode_welcome(payload)
        self.credit_bytes = welcome["credit_bytes"]
        self._inflight_bytes = 0
        return welcome

    def _teardown(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = None

    def _reconnect(self) -> None:
        """Reconnect with backoff, then redeliver everything unacked."""
        if self._closed:
            raise ConnectionError("client is closed")
        self._teardown()
        last_error: Optional[BaseException] = None
        for attempt in range(self.max_reconnect_attempts):
            delay = min(self.backoff_cap, self.backoff_base * (2**attempt))
            time.sleep(delay * (0.5 + self._rng.random() / 2))
            try:
                welcome = self._dial()
                break
            except (OSError, FleetProtocolError) as exc:
                if isinstance(exc, PeerError):
                    raise  # the analyzer rejected us; retrying cannot help
                last_error = exc
                self._teardown()
        else:
            raise ConnectionError(
                f"agent {self.agent_id}: analyzer unreachable after "
                f"{self.max_reconnect_attempts} attempts"
            ) from last_error
        self.stats.reconnects += 1
        self._emit("reconnect", attempt=attempt + 1)
        self._redeliver(welcome["acked"])

    def _redeliver(self, acked: Dict[int, int]) -> None:
        """Replay unacked chunks (trimmed by watermarks) and all ticks."""
        self._encoder.reset_stream(0)
        survivors: Deque[_Retained] = deque()
        for retained in self._unacked:
            if acked.get(retained.epoch, -1) >= retained.last_seq:
                continue  # the analyzer already holds this chunk
            survivors.append(retained)
        self._unacked = survivors
        self._inflight_bytes = 0
        for retained in list(survivors):
            payload = self._encoder.encode_run(
                0, 0, retained.epoch, retained.events, seqs=retained.seqs
            )
            retained.nbytes = len(payload)
            self._sock.sendall(
                protocol.encode_frame(protocol.FRAME_EVIDENCE, payload)
            )
            self._inflight_bytes += retained.nbytes
            self.stats.redelivered_chunks += 1
            self.stats.redelivered_events += len(retained.events)
        for epoch in self._ticked:
            self._sock.sendall(
                protocol.encode_frame(
                    protocol.FRAME_TICK, protocol.encode_tick(epoch)
                )
            )
        self._emit(
            "redeliver",
            chunks=len(survivors),
            ticks=len(self._ticked),
        )

    def _read_frame_blocking(self) -> Tuple[int, bytes]:
        while True:
            for frame in self._frames.frames():
                return frame
            data = self._sock.recv(1 << 20)
            if not data:
                self._frames.close()
                raise ConnectionError("analyzer closed the connection")
            self._frames.feed(data)

    def _pump(self, block: bool) -> None:
        """Process pending analyzer frames; optionally wait for one."""
        if not block:
            readable, _, _ = select.select([self._sock], [], [], 0)
            if not readable:
                self._drain_buffered()
                return
        frame_type, payload = self._read_frame_blocking()
        self._on_frame(frame_type, payload)
        self._drain_buffered()

    def _drain_buffered(self) -> None:
        for frame_type, payload in self._frames.frames():
            self._on_frame(frame_type, payload)

    def _on_frame(self, frame_type: int, payload: bytes) -> None:
        if frame_type == protocol.FRAME_ACK:
            epoch, seq, _acked_bytes = protocol.decode_ack(payload)
            self.stats.acks_received += 1
            while (
                self._unacked
                and self._unacked[0].epoch == epoch
                and self._unacked[0].last_seq <= seq
            ):
                done = self._unacked.popleft()
                self._inflight_bytes -= done.nbytes
        elif frame_type == protocol.FRAME_HEARTBEAT:
            pass  # our own echo
        elif frame_type == protocol.FRAME_ERROR:
            raise protocol.decode_error(payload)
        else:
            raise FleetProtocolError(
                f"analyzer sent unexpected frame type {frame_type}"
            )

    # -- logging ------------------------------------------------------
    def _emit(self, event: str, **fields) -> None:
        if self._log is None:
            return
        record = {"ts": time.time(), "agent": self.agent_id, "event": event}
        record.update(fields)
        self._log(record)


def jsonl_logger(path: str) -> Callable[[Dict], None]:
    """A ``log`` callable appending one JSON object per line to ``path``."""

    def write(record: Dict) -> None:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    return write
