"""Framing and handshake of the fleet wire protocol.

One fleet connection carries length-prefixed *frames* over a byte stream
(TCP or a Unix-domain socket).  The layout is deliberately tiny and pinned
by golden byte tests:

* frame header — ``<IB``: payload length (little-endian uint32, payload
  bytes only) followed by one frame-type byte;
* ``HELLO``/``WELCOME`` payloads — ``<4sH`` (:data:`FLEET_MAGIC` +
  little-endian protocol version) followed by a UTF-8 JSON body;
* ``EVIDENCE`` payloads are verbatim :class:`~repro.api.wire.WireEncoder`
  messages (magic ``RW01``), so the columnar evidence codec crosses the
  network unchanged;
* ``TICK`` is ``<q`` (epoch), ``ACK`` is ``<qqq`` (epoch, sequence
  watermark, cumulative acked payload bytes).

Every violation maps onto the :class:`FleetProtocolError` taxonomy — a
truncated frame, an oversized length prefix or an unknown type byte is a
loud error, never a silent desync, and a peer's death surfaces as an
exception on the next read/write instead of a hang (all socket operations
run under timeouts).
"""

from __future__ import annotations

import json
import socket
import struct
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

#: magic prefix of HELLO/WELCOME payloads ("fleet 007").
FLEET_MAGIC = b"F007"

#: protocol version spoken by this build; bumped on incompatible changes.
FLEET_PROTOCOL_VERSION = 1

#: refuse frames above this payload size (a corrupt length prefix would
#: otherwise stall the stream waiting for gigabytes that never come).
MAX_FRAME_BYTES = 64 * 1024 * 1024

_FRAME_HEADER = struct.Struct("<IB")
_HANDSHAKE_HEADER = struct.Struct("<4sH")
_TICK = struct.Struct("<q")
_ACK = struct.Struct("<qqq")

# frame types --------------------------------------------------------------
FRAME_HELLO = 1
FRAME_WELCOME = 2
FRAME_EVIDENCE = 3
FRAME_TICK = 4
FRAME_ACK = 5
FRAME_HEARTBEAT = 6
FRAME_BYE = 7
FRAME_ERROR = 8

_KNOWN_FRAMES = frozenset(
    (
        FRAME_HELLO,
        FRAME_WELCOME,
        FRAME_EVIDENCE,
        FRAME_TICK,
        FRAME_ACK,
        FRAME_HEARTBEAT,
        FRAME_BYE,
        FRAME_ERROR,
    )
)


# error taxonomy -----------------------------------------------------------
class FleetProtocolError(RuntimeError):
    """Base of every fleet transport violation."""


class TruncatedFrameError(FleetProtocolError):
    """The stream ended (or was severed) in the middle of a frame."""


class FrameTooLargeError(FleetProtocolError):
    """A length prefix exceeded :data:`MAX_FRAME_BYTES`."""


class UnknownFrameError(FleetProtocolError):
    """A frame carried a type byte this protocol version does not know."""


class HandshakeError(FleetProtocolError):
    """The HELLO/WELCOME exchange was malformed."""


class VersionMismatchError(HandshakeError):
    """The peer speaks a different protocol version (both are named)."""

    def __init__(self, ours: int, theirs: int) -> None:
        self.ours = ours
        self.theirs = theirs
        super().__init__(
            f"fleet protocol version mismatch: peer speaks v{theirs}, "
            f"this end speaks v{ours}"
        )


class PeerError(FleetProtocolError):
    """The peer reported a protocol error and is closing the connection."""

    def __init__(self, code: str, message: str) -> None:
        self.code = code
        super().__init__(f"peer error [{code}]: {message}")


# framing ------------------------------------------------------------------
def encode_frame(frame_type: int, payload: bytes = b"") -> bytes:
    """One wire frame: ``<IB`` header (payload length, type) + payload."""
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameTooLargeError(
            f"refusing to encode a {len(payload)}-byte frame "
            f"(cap {MAX_FRAME_BYTES})"
        )
    return _FRAME_HEADER.pack(len(payload), frame_type) + payload


class FrameReader:
    """Incremental frame parser usable from asyncio and blocking code alike.

    Feed arbitrary byte chunks; iterate complete frames.  The reader never
    loses sync: a bad length or type byte raises immediately, and
    :meth:`close` raises :class:`TruncatedFrameError` when the stream ends
    mid-frame — which is how a severed connection distinguishes "clean
    boundary" from "half a frame lost".
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self._buffer = bytearray()
        self._max = max_frame_bytes

    @property
    def buffered_bytes(self) -> int:
        """Bytes received but not yet consumed as complete frames."""
        return len(self._buffer)

    @property
    def at_boundary(self) -> bool:
        """True when no partial frame is buffered."""
        return not self._buffer

    def feed(self, data: bytes) -> None:
        """Append received bytes to the parse buffer."""
        self._buffer += data

    def frames(self) -> Iterator[Tuple[int, bytes]]:
        """Yield every complete ``(frame_type, payload)`` buffered so far."""
        header = _FRAME_HEADER
        while len(self._buffer) >= header.size:
            length, frame_type = header.unpack_from(self._buffer, 0)
            if length > self._max:
                raise FrameTooLargeError(
                    f"frame length {length} exceeds cap {self._max}"
                )
            if frame_type not in _KNOWN_FRAMES:
                raise UnknownFrameError(f"unknown frame type {frame_type}")
            end = header.size + length
            if len(self._buffer) < end:
                return
            payload = bytes(self._buffer[header.size : end])
            del self._buffer[:end]
            yield frame_type, payload

    def close(self) -> None:
        """Declare end-of-stream; raises if a frame was left half-written."""
        if self._buffer:
            raise TruncatedFrameError(
                f"stream ended mid-frame with {len(self._buffer)} "
                "unparsed bytes"
            )


# handshake ----------------------------------------------------------------
def _encode_handshake(body: Dict) -> bytes:
    return _HANDSHAKE_HEADER.pack(FLEET_MAGIC, FLEET_PROTOCOL_VERSION) + (
        json.dumps(body, sort_keys=True, separators=(",", ":")).encode("utf-8")
    )


def _decode_handshake(payload: bytes, what: str) -> Dict:
    if len(payload) < _HANDSHAKE_HEADER.size:
        raise HandshakeError(f"{what} payload too short ({len(payload)} bytes)")
    magic, version = _HANDSHAKE_HEADER.unpack_from(payload, 0)
    if magic != FLEET_MAGIC:
        raise HandshakeError(f"bad {what} magic {magic!r}")
    if version != FLEET_PROTOCOL_VERSION:
        raise VersionMismatchError(FLEET_PROTOCOL_VERSION, version)
    try:
        body = json.loads(payload[_HANDSHAKE_HEADER.size :].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise HandshakeError(f"undecodable {what} body: {exc}") from exc
    if not isinstance(body, dict):
        raise HandshakeError(f"{what} body must be a JSON object")
    return body


def encode_hello(agent_id: str, epoch_watermark: int = -1) -> bytes:
    """HELLO payload: who is connecting and how far its stream has epoched."""
    return _encode_handshake(
        {"agent_id": agent_id, "epoch_watermark": epoch_watermark}
    )


def decode_hello(payload: bytes) -> Dict:
    """Validate and decode a HELLO payload (version-checked)."""
    body = _decode_handshake(payload, "HELLO")
    if not isinstance(body.get("agent_id"), str) or not body["agent_id"]:
        raise HandshakeError("HELLO must carry a non-empty agent_id")
    return body


def encode_welcome(credit_bytes: int, acked: Dict[int, int]) -> bytes:
    """WELCOME payload: the credit window and per-epoch acked watermarks."""
    return _encode_handshake(
        {
            "credit_bytes": credit_bytes,
            "acked": {str(epoch): seq for epoch, seq in acked.items()},
        }
    )


def decode_welcome(payload: bytes) -> Dict:
    """Validate and decode a WELCOME payload (version-checked).

    Returns ``{"credit_bytes": int, "acked": {epoch: seq}}`` with integer
    epoch keys restored.
    """
    body = _decode_handshake(payload, "WELCOME")
    credit = body.get("credit_bytes")
    if not isinstance(credit, int) or credit <= 0:
        raise HandshakeError("WELCOME must grant a positive credit window")
    acked = body.get("acked", {})
    if not isinstance(acked, dict):
        raise HandshakeError("WELCOME acked watermarks must be an object")
    return {
        "credit_bytes": credit,
        "acked": {int(epoch): int(seq) for epoch, seq in acked.items()},
    }


def encode_tick(epoch: int) -> bytes:
    """TICK payload: the epoch the sending agent has finished."""
    return _TICK.pack(epoch)


def decode_tick(payload: bytes) -> int:
    """Decode a TICK payload into its epoch."""
    if len(payload) != _TICK.size:
        raise FleetProtocolError(f"TICK payload must be {_TICK.size} bytes")
    return _TICK.unpack(payload)[0]


def encode_ack(epoch: int, seq: int, acked_bytes: int) -> bytes:
    """ACK payload: epoch + seq watermark plus cumulative acked bytes."""
    return _ACK.pack(epoch, seq, acked_bytes)


def decode_ack(payload: bytes) -> Tuple[int, int, int]:
    """Decode an ACK payload into ``(epoch, seq, acked_bytes)``."""
    if len(payload) != _ACK.size:
        raise FleetProtocolError(f"ACK payload must be {_ACK.size} bytes")
    return _ACK.unpack(payload)


def encode_error(code: str, message: str) -> bytes:
    """ERROR payload (best-effort courtesy before closing)."""
    return json.dumps(
        {"code": code, "message": message}, sort_keys=True
    ).encode("utf-8")


def decode_error(payload: bytes) -> PeerError:
    """Decode an ERROR payload into a raisable :class:`PeerError`."""
    try:
        body = json.loads(payload.decode("utf-8"))
        return PeerError(str(body.get("code")), str(body.get("message")))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return PeerError("undecodable", repr(payload[:80]))


# endpoints ----------------------------------------------------------------
@dataclass(frozen=True)
class Endpoint:
    """A parsed transport address: ``tcp:host:port`` or ``unix:/path``."""

    kind: str  # "tcp" | "unix"
    host: str = ""
    port: int = 0
    path: str = ""

    def __str__(self) -> str:
        if self.kind == "tcp":
            return f"tcp:{self.host}:{self.port}"
        return f"unix:{self.path}"

    def connect(self, timeout: Optional[float] = None) -> socket.socket:
        """Open a blocking client socket to this endpoint (timeout applies)."""
        if self.kind == "tcp":
            sock = socket.create_connection(
                (self.host, self.port), timeout=timeout
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        else:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(self.path)
        return sock


def parse_endpoint(text: str) -> Endpoint:
    """Parse ``tcp:HOST:PORT`` / ``unix:/PATH`` into an :class:`Endpoint`."""
    kind, sep, rest = text.partition(":")
    if not sep or not rest:
        raise ValueError(f"malformed endpoint {text!r}")
    if kind == "tcp":
        host, sep, port_text = rest.rpartition(":")
        if not sep or not host:
            raise ValueError(f"tcp endpoint needs host:port, got {text!r}")
        try:
            port = int(port_text)
        except ValueError:
            raise ValueError(f"non-numeric tcp port in {text!r}") from None
        if not 0 <= port <= 65535:
            raise ValueError(f"tcp port out of range in {text!r}")
        return Endpoint(kind="tcp", host=host, port=port)
    if kind == "unix":
        return Endpoint(kind="unix", path=rest)
    raise ValueError(f"unknown endpoint kind {kind!r} (want tcp or unix)")
