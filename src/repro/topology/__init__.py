"""Datacenter topology substrate.

Provides the parametric Clos topology the paper's theorems are stated for,
the small test-cluster topology of Section 7, node/link primitives, and IP
addressing (including the router-alias map used by the path discovery agent).
"""

from repro.topology.elements import (
    DirectedLink,
    Host,
    Link,
    LinkLevel,
    NodeKind,
    Switch,
    SwitchTier,
)
from repro.topology.clos import ClosParameters, ClosTopology
from repro.topology.testcluster import TestClusterTopology
from repro.topology.addressing import AddressPlan

__all__ = [
    "DirectedLink",
    "Host",
    "Link",
    "LinkLevel",
    "NodeKind",
    "Switch",
    "SwitchTier",
    "ClosParameters",
    "ClosTopology",
    "TestClusterTopology",
    "AddressPlan",
]
