"""Base topology abstraction shared by the Clos and test-cluster topologies.

A topology is a collection of :class:`~repro.topology.elements.Switch` and
:class:`~repro.topology.elements.Host` nodes plus undirected physical links.
It offers graph-style queries (neighbours, link levels, networkx export) that
the routing, simulation and analysis layers rely on.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence

import networkx as nx

from repro.topology.elements import (
    DirectedLink,
    Host,
    Link,
    LinkLevel,
    Switch,
    SwitchTier,
)


class Topology:
    """A generic datacenter topology.

    Subclasses populate the node and link tables in their constructor via
    :meth:`_add_switch`, :meth:`_add_host` and :meth:`_add_link`.
    """

    def __init__(self) -> None:
        self._switches: Dict[str, Switch] = {}
        self._hosts: Dict[str, Host] = {}
        self._links: Dict[Link, LinkLevel] = {}
        self._adjacency: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _add_switch(self, switch: Switch) -> None:
        if switch.name in self._switches or switch.name in self._hosts:
            raise ValueError(f"duplicate node name {switch.name!r}")
        self._switches[switch.name] = switch
        self._adjacency.setdefault(switch.name, [])

    def _add_host(self, host: Host) -> None:
        if host.name in self._switches or host.name in self._hosts:
            raise ValueError(f"duplicate node name {host.name!r}")
        self._hosts[host.name] = host
        self._adjacency.setdefault(host.name, [])

    def _add_link(self, a: str, b: str, level: LinkLevel) -> Link:
        if a not in self._adjacency or b not in self._adjacency:
            raise ValueError(f"link endpoints must be added first: {a!r}, {b!r}")
        link = Link.of(a, b)
        if link in self._links:
            raise ValueError(f"duplicate link {link}")
        self._links[link] = level
        self._adjacency[a].append(b)
        self._adjacency[b].append(a)
        return link

    # ------------------------------------------------------------------
    # node queries
    # ------------------------------------------------------------------
    @property
    def switches(self) -> Dict[str, Switch]:
        """Mapping of switch name to :class:`Switch`."""
        return dict(self._switches)

    @property
    def hosts(self) -> Dict[str, Host]:
        """Mapping of host name to :class:`Host`."""
        return dict(self._hosts)

    def switch(self, name: str) -> Switch:
        """Return the switch named ``name`` (raises ``KeyError`` otherwise)."""
        return self._switches[name]

    def host(self, name: str) -> Host:
        """Return the host named ``name`` (raises ``KeyError`` otherwise)."""
        return self._hosts[name]

    def is_host(self, name: str) -> bool:
        """True when ``name`` refers to a host."""
        return name in self._hosts

    def is_switch(self, name: str) -> bool:
        """True when ``name`` refers to a switch."""
        return name in self._switches

    def node_names(self) -> Iterator[str]:
        """Iterate over every node name (hosts then switches)."""
        yield from self._hosts
        yield from self._switches

    def switches_of_tier(self, tier: SwitchTier, pod: Optional[int] = None) -> List[Switch]:
        """Return switches of ``tier`` (restricted to ``pod`` when given)."""
        result = [s for s in self._switches.values() if s.tier == tier]
        if pod is not None:
            result = [s for s in result if s.pod == pod]
        return sorted(result, key=lambda s: s.name)

    def hosts_under_tor(self, tor_name: str) -> List[Host]:
        """Return the hosts attached to ToR switch ``tor_name``."""
        return sorted(
            (h for h in self._hosts.values() if h.tor == tor_name),
            key=lambda h: h.name,
        )

    def tor_of_host(self, host_name: str) -> Switch:
        """Return the ToR switch of ``host_name``."""
        return self._switches[self._hosts[host_name].tor]

    def neighbors(self, name: str) -> List[str]:
        """Return the neighbour names of node ``name``."""
        return list(self._adjacency[name])

    # ------------------------------------------------------------------
    # link queries
    # ------------------------------------------------------------------
    @property
    def links(self) -> List[Link]:
        """All undirected physical links, sorted."""
        return sorted(self._links)

    def directed_links(self) -> List[DirectedLink]:
        """Both directions of every physical link, sorted."""
        result: List[DirectedLink] = []
        for link in self._links:
            result.extend(link.directions())
        return sorted(result)

    def has_link(self, a: str, b: str) -> bool:
        """True when a physical link between ``a`` and ``b`` exists."""
        return Link.of(a, b) in self._links

    def link_level(self, link: Link | DirectedLink) -> LinkLevel:
        """Return the :class:`LinkLevel` of ``link``."""
        if isinstance(link, DirectedLink):
            link = link.undirected()
        return self._links[link]

    def links_of_level(self, level: LinkLevel) -> List[Link]:
        """Return all physical links of ``level``."""
        return sorted(l for l, lv in self._links.items() if lv == level)

    def links_of_node(self, name: str) -> List[Link]:
        """Return all physical links adjacent to node ``name``."""
        return sorted(l for l in self._links if name in (l.a, l.b))

    def num_links(self, directed: bool = False) -> int:
        """Number of links (doubled when ``directed``)."""
        return len(self._links) * (2 if directed else 1)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_networkx(self) -> nx.Graph:
        """Export the topology as an undirected :class:`networkx.Graph`.

        Node attributes carry ``kind`` (``"host"``/``"switch"``) and, for
        switches, ``tier`` and ``pod``.  Edge attribute ``level`` carries the
        :class:`LinkLevel`.
        """
        graph = nx.Graph()
        for host in self._hosts.values():
            graph.add_node(host.name, kind="host", pod=host.pod, tor=host.tor)
        for switch in self._switches.values():
            graph.add_node(
                switch.name, kind="switch", tier=switch.tier, pod=switch.pod
            )
        for link, level in self._links.items():
            graph.add_edge(link.a, link.b, level=level)
        return graph

    def describe(self) -> str:
        """Return a one-line human-readable summary of the topology."""
        return (
            f"{type(self).__name__}: {len(self._hosts)} hosts, "
            f"{len(self._switches)} switches, {len(self._links)} links"
        )

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check internal consistency; raises ``ValueError`` on violations."""
        for host in self._hosts.values():
            if host.tor not in self._switches:
                raise ValueError(f"host {host.name} references unknown ToR {host.tor}")
            if not self.has_link(host.name, host.tor):
                raise ValueError(f"host {host.name} has no link to its ToR {host.tor}")
        for link in self._links:
            for end in (link.a, link.b):
                if end not in self._switches and end not in self._hosts:
                    raise ValueError(f"link {link} references unknown node {end}")
