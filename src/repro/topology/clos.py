"""Parametric Clos topology (Definition 1 of the paper).

A Clos topology has ``npod`` pods, each with ``n0`` ToR switches and ``n1``
tier-1 switches connected by a complete bipartite network (level-1 links).
The tier-1 switches of every pod connect to all ``n2`` tier-2 switches
(level-2 links).  ``hosts_per_tor`` servers hang off each ToR.  An optional
tier-3 layer can be added; the paper ignores it in the analysis because only
~2% of flows traverse it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.topology.elements import Host, LinkLevel, Switch, SwitchTier
from repro.topology.topology import Topology


@dataclass(frozen=True)
class ClosParameters:
    """Sizing parameters of a Clos topology.

    Attributes mirror the paper's notation: ``npod`` pods, ``n0`` ToR switches
    per pod, ``n1`` tier-1 switches per pod, ``n2`` tier-2 switches shared by
    all pods and ``hosts_per_tor`` (the paper's ``H``).
    """

    npod: int = 2
    n0: int = 20
    n1: int = 4
    n2: int = 4
    hosts_per_tor: int = 4
    n3: int = 0

    def __post_init__(self) -> None:
        if self.npod < 1:
            raise ValueError("npod must be >= 1")
        if min(self.n0, self.n1, self.n2) < 1:
            raise ValueError("n0, n1 and n2 must be >= 1")
        if self.hosts_per_tor < 1:
            raise ValueError("hosts_per_tor must be >= 1")
        if self.n3 < 0:
            raise ValueError("n3 must be >= 0")

    @property
    def num_hosts(self) -> int:
        """Total number of servers."""
        return self.npod * self.n0 * self.hosts_per_tor

    @property
    def num_level1_links(self) -> int:
        """Number of ToR-T1 physical links."""
        return self.npod * self.n0 * self.n1

    @property
    def num_level2_links(self) -> int:
        """Number of T1-T2 physical links."""
        return self.npod * self.n1 * self.n2

    @property
    def num_host_links(self) -> int:
        """Number of server-ToR physical links."""
        return self.num_hosts

    @property
    def num_level3_links(self) -> int:
        """Number of T2-T3 physical links."""
        return self.n2 * self.n3

    @property
    def num_links(self) -> int:
        """Total number of physical links."""
        return (
            self.num_host_links
            + self.num_level1_links
            + self.num_level2_links
            + self.num_level3_links
        )


class ClosTopology(Topology):
    """A Clos (folded-Clos / leaf-spine-with-pods) datacenter topology.

    Naming convention:

    * hosts: ``"pod{p}-tor{i}-host{j}"``
    * ToR switches: ``"pod{p}-tor{i}"``
    * tier-1 switches: ``"pod{p}-t1-{j}"``
    * tier-2 switches: ``"t2-{k}"``
    * tier-3 switches: ``"t3-{m}"``
    """

    def __init__(self, params: Optional[ClosParameters] = None, **kwargs) -> None:
        """Build the topology from ``params`` or keyword overrides.

        Either pass a fully-formed :class:`ClosParameters` or any subset of
        its fields as keyword arguments (e.g. ``ClosTopology(npod=3, n0=8)``).
        """
        super().__init__()
        if params is None:
            params = ClosParameters(**kwargs)
        elif kwargs:
            raise TypeError("pass either params or keyword overrides, not both")
        self._params = params
        self._build()
        self.validate()

    # ------------------------------------------------------------------
    @property
    def params(self) -> ClosParameters:
        """The sizing parameters this topology was built from."""
        return self._params

    # ------------------------------------------------------------------
    def _build(self) -> None:
        p = self._params
        # Tier-2 (and optional tier-3) switches are shared across pods.
        for k in range(p.n2):
            self._add_switch(Switch(name=f"t2-{k}", tier=SwitchTier.T2, index=k))
        for m in range(p.n3):
            self._add_switch(Switch(name=f"t3-{m}", tier=SwitchTier.T3, index=m))

        for pod in range(p.npod):
            for j in range(p.n1):
                self._add_switch(
                    Switch(name=f"pod{pod}-t1-{j}", tier=SwitchTier.T1, index=j, pod=pod)
                )
            for i in range(p.n0):
                tor_name = f"pod{pod}-tor{i}"
                self._add_switch(
                    Switch(name=tor_name, tier=SwitchTier.TOR, index=i, pod=pod)
                )
                for h in range(p.hosts_per_tor):
                    host_name = f"{tor_name}-host{h}"
                    self._add_host(
                        Host(name=host_name, tor=tor_name, pod=pod, index=h)
                    )
                    self._add_link(host_name, tor_name, LinkLevel.HOST)
                # level-1: complete bipartite ToR x T1 inside the pod
                for j in range(p.n1):
                    self._add_link(tor_name, f"pod{pod}-t1-{j}", LinkLevel.LEVEL1)
            # level-2: complete bipartite T1 x T2
            for j in range(p.n1):
                for k in range(p.n2):
                    self._add_link(f"pod{pod}-t1-{j}", f"t2-{k}", LinkLevel.LEVEL2)
        # optional level-3: complete bipartite T2 x T3
        for k in range(p.n2):
            for m in range(p.n3):
                self._add_link(f"t2-{k}", f"t3-{m}", LinkLevel.LEVEL3)

    # ------------------------------------------------------------------
    # Clos-specific accessors
    # ------------------------------------------------------------------
    def tors(self, pod: Optional[int] = None) -> List[Switch]:
        """ToR switches (of ``pod`` when given)."""
        return self.switches_of_tier(SwitchTier.TOR, pod)

    def tier1s(self, pod: Optional[int] = None) -> List[Switch]:
        """Tier-1 switches (of ``pod`` when given)."""
        return self.switches_of_tier(SwitchTier.T1, pod)

    def tier2s(self) -> List[Switch]:
        """Tier-2 switches."""
        return self.switches_of_tier(SwitchTier.T2)

    def tier3s(self) -> List[Switch]:
        """Tier-3 switches (empty unless ``n3 > 0``)."""
        return self.switches_of_tier(SwitchTier.T3)

    def pod_of(self, name: str) -> Optional[int]:
        """Pod index of a host or switch (``None`` for T2/T3 switches)."""
        if self.is_host(name):
            return self.host(name).pod
        return self.switch(name).pod

    def expected_hop_count(self, src_host: str, dst_host: str) -> int:
        """Number of links on the path between two hosts under ECMP routing.

        Intra-rack flows traverse 2 links, intra-pod flows 4 links and
        cross-pod flows 6 links (counting both server-ToR links).
        """
        src = self.host(src_host)
        dst = self.host(dst_host)
        if src.tor == dst.tor:
            return 2
        if src.pod == dst.pod:
            return 4
        return 6
