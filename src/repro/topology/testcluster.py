"""The small test cluster of Section 7 of the paper.

The paper's test cluster has 10 ToR switches and a total of 80 links, with the
T1 switches carrying real production traffic.  We model it as a single-pod
Clos fragment: 10 ToRs, a configurable number of T1 switches and a handful of
controlled hosts per ToR, sized so that the link count matches the paper's 80
by default (10 ToRs x 4 T1s = 40 level-1 links + 40 host links).
"""

from __future__ import annotations

from repro.topology.clos import ClosParameters, ClosTopology


class TestClusterTopology(ClosTopology):
    """Single-pod test cluster used for the Section 7 experiments."""

    def __init__(
        self,
        num_tors: int = 10,
        num_t1: int = 4,
        hosts_per_tor: int = 4,
        num_t2: int = 1,
    ) -> None:
        params = ClosParameters(
            npod=1,
            n0=num_tors,
            n1=num_t1,
            n2=num_t2,
            hosts_per_tor=hosts_per_tor,
        )
        super().__init__(params)

    @property
    def controlled_hosts(self) -> list[str]:
        """Hosts we "control" in the cluster (all simulated hosts)."""
        return sorted(self.hosts)
