"""IP address plan and router-alias resolution.

The path discovery agent receives ICMP TTL-exceeded responses that carry the
IP address of the responding interface.  In a datacenter the operator knows
the topology, so mapping interface IPs back to switch names ("router
aliasing", Section 4.2) is a simple table lookup.  :class:`AddressPlan`
assigns a management IP to every node and one interface IP per (switch, link)
pair, and resolves any of them back to the owning node.
"""

from __future__ import annotations

import ipaddress
from typing import Dict, Optional

from repro.topology.elements import Link
from repro.topology.topology import Topology


class AddressPlan:
    """Deterministic IPv4 address assignment for a topology.

    Hosts and switches get a loopback/management address carved out of
    ``mgmt_prefix``; every (node, link) interface gets an address carved out
    of ``iface_prefix``.  The plan exposes both forward lookups (node -> IP)
    and the reverse alias lookup (any interface IP -> node name).
    """

    def __init__(
        self,
        topology: Topology,
        mgmt_prefix: str = "10.0.0.0/12",
        iface_prefix: str = "172.16.0.0/12",
    ) -> None:
        self._topology = topology
        self._mgmt_net = ipaddress.ip_network(mgmt_prefix)
        self._iface_net = ipaddress.ip_network(iface_prefix)
        self._node_to_mgmt: Dict[str, str] = {}
        self._iface_to_node: Dict[str, str] = {}
        self._node_link_to_iface: Dict[tuple[str, Link], str] = {}
        self._assign()

    def _assign(self) -> None:
        mgmt_iter = self._mgmt_net.hosts()
        iface_iter = self._iface_net.hosts()
        for name in sorted(self._topology.node_names()):
            self._node_to_mgmt[name] = str(next(mgmt_iter))
        for link in self._topology.links:
            for end in (link.a, link.b):
                ip = str(next(iface_iter))
                self._node_link_to_iface[(end, link)] = ip
                self._iface_to_node[ip] = end

    # ------------------------------------------------------------------
    def management_ip(self, node: str) -> str:
        """Management/loopback IP of ``node``."""
        return self._node_to_mgmt[node]

    def interface_ip(self, node: str, link: Link) -> str:
        """IP of ``node``'s interface on ``link``."""
        return self._node_link_to_iface[(node, link)]

    def resolve(self, ip: str) -> Optional[str]:
        """Resolve an interface or management IP back to a node name.

        Returns ``None`` for addresses outside the plan (e.g. Internet
        addresses that a stray traceroute would hit).
        """
        if ip in self._iface_to_node:
            return self._iface_to_node[ip]
        for node, mgmt in self._node_to_mgmt.items():
            if mgmt == ip:
                return node
        return None

    def __len__(self) -> int:
        return len(self._iface_to_node) + len(self._node_to_mgmt)
