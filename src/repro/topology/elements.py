"""Primitive topology elements: switches, hosts, and (directed) links.

The paper reasons about *directed* links — Figure 11 distinguishes a
"ToR-T1 failure" from a "T1-ToR failure" — so the fundamental unit used by
the voting scheme, the simulator, and the routing matrix is
:class:`DirectedLink`.  :class:`Link` represents the undirected physical cable
and is used for inventory and reporting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class SwitchTier(enum.IntEnum):
    """Switch tiers of a Clos datacenter (Definition 1 of the paper)."""

    TOR = 0
    T1 = 1
    T2 = 2
    T3 = 3


class NodeKind(enum.Enum):
    """Kind of a topology node."""

    HOST = "host"
    SWITCH = "switch"


class LinkLevel(enum.IntEnum):
    """Level of a link in the Clos hierarchy.

    ``HOST`` links connect a server to its ToR; ``LEVEL1`` links connect ToR
    and tier-1 switches; ``LEVEL2`` links connect tier-1 and tier-2 switches;
    ``LEVEL3`` links connect tier-2 and tier-3 switches (rarely traversed —
    the paper ignores them, see Section 4.1).
    """

    HOST = 0
    LEVEL1 = 1
    LEVEL2 = 2
    LEVEL3 = 3


@dataclass(frozen=True)
class Switch:
    """A switch in the datacenter.

    Attributes
    ----------
    name:
        Unique name, e.g. ``"pod0-tor3"`` or ``"t2-7"``.
    tier:
        Tier of the switch (ToR, T1, T2, T3).
    pod:
        Pod index for ToR/T1 switches; ``None`` for T2/T3 switches which are
        shared across pods.
    index:
        Index of the switch within its tier (and pod, when applicable).
    """

    name: str
    tier: SwitchTier
    index: int
    pod: Optional[int] = None

    @property
    def kind(self) -> NodeKind:
        return NodeKind.SWITCH

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


@dataclass(frozen=True)
class Host:
    """A server attached to a ToR switch."""

    name: str
    tor: str
    pod: int
    index: int

    @property
    def kind(self) -> NodeKind:
        return NodeKind.HOST

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


@dataclass(frozen=True, order=True)
class DirectedLink:
    """A directed link ``src -> dst`` between two node names."""

    src: str
    dst: str

    def reversed(self) -> "DirectedLink":
        """Return the link in the opposite direction."""
        return DirectedLink(self.dst, self.src)

    def undirected(self) -> "Link":
        """Return the undirected physical link this direction belongs to."""
        return Link.of(self.src, self.dst)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.src}->{self.dst}"


@dataclass(frozen=True, order=True)
class Link:
    """An undirected physical link; endpoints are stored in sorted order."""

    a: str
    b: str

    @staticmethod
    def of(x: str, y: str) -> "Link":
        """Build a canonical (sorted-endpoint) undirected link."""
        return Link(*sorted((x, y)))

    def directions(self) -> tuple[DirectedLink, DirectedLink]:
        """Both directed links of this physical cable."""
        return DirectedLink(self.a, self.b), DirectedLink(self.b, self.a)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.a}--{self.b}"


@dataclass
class LinkAggregationGroup:
    """A LAG: several physical member cables presented as one L3 link.

    The paper notes that unless *all* members of a LAG fail, the L3 path is
    unaffected.  We model a LAG as a set of member identifiers attached to a
    single :class:`Link`; the L3 link is considered down only when every
    member is down.
    """

    link: Link
    members: list[str] = field(default_factory=list)
    down_members: set[str] = field(default_factory=set)

    def fail_member(self, member: str) -> None:
        """Mark a member cable as failed."""
        if member not in self.members:
            raise ValueError(f"{member} is not part of LAG {self.link}")
        self.down_members.add(member)

    def restore_member(self, member: str) -> None:
        """Restore a previously failed member cable."""
        self.down_members.discard(member)

    @property
    def is_down(self) -> bool:
        """True when every member of the LAG has failed."""
        return bool(self.members) and set(self.members) == self.down_members
