"""Path discovery agent: traceroute engine and ICMP rate limiting."""

from repro.discovery.icmp import IcmpRateLimiter, IcmpUsageStats
from repro.discovery.traceroute import TracerouteEngine, TracerouteResult
from repro.discovery.agent import DiscoveredPath, PathDiscoveryAgent, PathDiscoveryConfig

__all__ = [
    "IcmpRateLimiter",
    "IcmpUsageStats",
    "TracerouteEngine",
    "TracerouteResult",
    "PathDiscoveryAgent",
    "PathDiscoveryConfig",
    "DiscoveredPath",
]
