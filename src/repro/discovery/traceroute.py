"""Traceroute engine: carefully crafted TCP probes with increasing TTLs.

007 sends up to 15 TCP probes with TTL 0..15 that carry the *same five-tuple*
as the flow being traced (so ECMP forwards them along the same path), encode
the TTL in the IP ID field to disambiguate concurrent traces, and carry a bad
checksum so the destination's TCP stack ignores them.  Switches answer with
ICMP TTL-exceeded messages subject to the control-plane rate cap; probes that
die on a blackholed or very lossy link simply yield no response for that and
all later hops — which is itself a useful signal (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.discovery.icmp import IcmpRateLimiter
from repro.netsim.links import LinkStateTable
from repro.routing.ecmp import EcmpRouter, NoRouteError
from repro.routing.fivetuple import FiveTuple
from repro.routing.paths import Path
from repro.topology.elements import DirectedLink
from repro.util.rng import RngLike, ensure_rng

MAX_TTL = 15


@dataclass(frozen=True)
class ProbeRecord:
    """One traceroute probe and its outcome."""

    ttl: int
    ip_id: int
    responder: Optional[str]
    dropped_on: Optional[DirectedLink] = None
    rate_limited: bool = False


@dataclass
class TracerouteResult:
    """Outcome of tracing one flow."""

    five_tuple: FiveTuple
    src_host: str
    dst_host: str
    probes: List[ProbeRecord] = field(default_factory=list)
    true_path: Optional[Path] = None
    discovered_links: List[DirectedLink] = field(default_factory=list)
    reached_destination: bool = False

    @property
    def probes_sent(self) -> int:
        """Number of probe packets emitted."""
        return len(self.probes)

    @property
    def complete(self) -> bool:
        """True when the full path (every link) was discovered."""
        return (
            self.true_path is not None
            and len(self.discovered_links) == self.true_path.hop_count
        )

    @property
    def responders(self) -> List[Optional[str]]:
        """Responding node per TTL (``None`` where no answer arrived)."""
        return [probe.responder for probe in self.probes]

    def last_responding_hop(self) -> Optional[str]:
        """Deepest node that answered (useful when a blackhole cut the trace)."""
        answered = [p.responder for p in self.probes if p.responder is not None]
        return answered[-1] if answered else None


class TracerouteEngine:
    """Sends crafted traceroute probes over the simulated network.

    Parameters
    ----------
    router:
        ECMP router used to determine the *current* path of the probed
        five-tuple (which equals the flow's path as long as no reroute
        happened in between).
    link_table:
        Per-link drop probabilities; probes are ordinary packets and can be
        dropped too.
    icmp_limiter:
        The per-switch response budget.
    probe_loss:
        When True (default) probes experience the same loss process as data
        packets; set to False for idealised traces in unit tests.
    """

    def __init__(
        self,
        router: EcmpRouter,
        link_table: LinkStateTable,
        icmp_limiter: Optional[IcmpRateLimiter] = None,
        probe_loss: bool = True,
        rng: RngLike = 0,
    ) -> None:
        self._router = router
        self._link_table = link_table
        self._icmp = icmp_limiter or IcmpRateLimiter()
        self._probe_loss = probe_loss
        self._rng = ensure_rng(rng)
        self._next_ip_id = 1

    # ------------------------------------------------------------------
    @property
    def icmp_limiter(self) -> IcmpRateLimiter:
        """The ICMP rate limiter in use."""
        return self._icmp

    def trace(
        self,
        flow: FiveTuple,
        src_host: str,
        dst_host: str,
        time_s: float = 0.0,
    ) -> TracerouteResult:
        """Trace the path of ``flow`` from ``src_host`` to ``dst_host``.

        ``time_s`` is the absolute time (seconds) of the trace; it drives the
        per-second ICMP budget accounting.
        """
        result = TracerouteResult(
            five_tuple=flow, src_host=src_host, dst_host=dst_host
        )
        try:
            path = self._router.route(flow, src_host, dst_host)
        except NoRouteError:
            # Nothing is reachable; no probes are even forwarded beyond the host.
            return result
        result.true_path = path

        nodes = path.nodes()
        known_nodes = {0: nodes[0]}  # position -> name; position i is nodes[i]
        # TTL t expires at nodes[t] (the t-th hop after the source).
        for ttl in range(1, min(len(nodes), MAX_TTL + 1)):
            ip_id = self._allocate_ip_id(ttl)
            dropped_on = self._forward_probe(path, hops=ttl)
            if dropped_on is not None:
                result.probes.append(
                    ProbeRecord(ttl=ttl, ip_id=ip_id, responder=None, dropped_on=dropped_on)
                )
                continue
            node = nodes[ttl]
            if ttl == len(nodes) - 1:
                # Probe reached the destination host; its stack discards the bad
                # checksum but the TTL did not expire in the network, so the
                # host's response (RST/ICMP port unreachable) identifies it.
                result.probes.append(ProbeRecord(ttl=ttl, ip_id=ip_id, responder=node))
                result.reached_destination = True
                known_nodes[ttl] = node
                continue
            if self._icmp.allow(node, time_s):
                result.probes.append(ProbeRecord(ttl=ttl, ip_id=ip_id, responder=node))
                known_nodes[ttl] = node
            else:
                result.probes.append(
                    ProbeRecord(ttl=ttl, ip_id=ip_id, responder=None, rate_limited=True)
                )
        result.discovered_links = self._links_from_responses(path, known_nodes)
        self._infer_link_after_last_hop(result, path, known_nodes, dst_host)
        return result

    # ------------------------------------------------------------------
    def _forward_probe(self, path: Path, hops: int) -> Optional[DirectedLink]:
        """Forward a probe across the first ``hops`` links; return the dropping link."""
        for link in path.links[:hops]:
            p = self._link_table.drop_probability(link)
            if p <= 0.0:
                continue
            if not self._probe_loss and p < 1.0:
                continue
            if p >= 1.0 or self._rng.random() < p:
                return link
        return None

    @staticmethod
    def _links_from_responses(path: Path, known_nodes: dict[int, str]) -> List[DirectedLink]:
        """Links whose both endpoints were identified by the trace."""
        links: List[DirectedLink] = []
        for i, link in enumerate(path.links):
            if i in known_nodes and (i + 1) in known_nodes:
                links.append(link)
        return links

    def _infer_link_after_last_hop(
        self,
        result: TracerouteResult,
        path: Path,
        known_nodes: dict[int, str],
        dst_host: str,
    ) -> None:
        """Pinpoint a blackholed link from a truncated trace (Section 4.2).

        When probes stop answering after some hop, the agent knows the
        destination and the topology; if the *next* hop from the last
        responding switch toward the destination is uniquely determined (the
        switch is the destination's ToR, or a tier-1 switch in the
        destination's pod), the dead link itself can be named even though its
        far end never answered.
        """
        if result.reached_destination:
            return
        # Deepest contiguous known position starting from the source.
        position = 0
        while (position + 1) in known_nodes:
            position += 1
        if position >= path.hop_count:
            return
        topo = self._router.topology
        last = path.nodes()[position]
        if not topo.is_switch(last):
            return
        dst = topo.host(dst_host)
        switch = topo.switch(last)
        if switch.name == dst.tor:
            next_hop = dst_host
        elif switch.tier.name == "T1" and switch.pod == dst.pod:
            next_hop = dst.tor
        else:
            return
        inferred = DirectedLink(last, next_hop)
        if inferred not in result.discovered_links and topo.has_link(last, next_hop):
            result.discovered_links.append(inferred)

    def _allocate_ip_id(self, ttl: int) -> int:
        """Encode the TTL in the IP ID field (disambiguates concurrent traces)."""
        ip_id = (self._next_ip_id << 4) | (ttl & 0xF)
        self._next_ip_id = (self._next_ip_id + 1) % 4096
        return ip_id & 0xFFFF
