"""Per-switch ICMP rate limiting and accounting.

Switches generate ICMP TTL-exceeded responses on their (weak) control-plane
CPU, so operators cap them — ``Tmax = 100`` responses per second in the
paper's network.  The limiter below enforces that cap per switch per second
and keeps the counters needed to regenerate Table 1 (distribution of ICMP
responses per second per switch).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

DEFAULT_TMAX = 100


@dataclass
class IcmpUsageStats:
    """Summary of per-switch, per-second ICMP response counts (Table 1)."""

    fraction_zero: float
    fraction_low: float
    fraction_high: float
    max_rate: int
    num_samples: int

    def as_row(self) -> Dict[str, float]:
        """Table-1-shaped row: shares of T=0, 0<T<=3, T>3 and max(T)."""
        return {
            "T = 0": self.fraction_zero,
            "T > 0 & T <= 3": self.fraction_low,
            "T > 3": self.fraction_high,
            "max(T)": float(self.max_rate),
        }


class IcmpRateLimiter:
    """Token accounting of ICMP responses per (switch, second).

    ``allow(switch, time_s)`` returns whether the switch still has budget to
    answer one more traceroute probe during that second, and records the
    response when it does.
    """

    def __init__(self, tmax_per_second: int = DEFAULT_TMAX) -> None:
        if tmax_per_second < 1:
            raise ValueError("tmax_per_second must be >= 1")
        self._tmax = tmax_per_second
        self._counts: Dict[Tuple[str, int], int] = defaultdict(int)
        self._switches: set[str] = set()
        self._denied = 0
        self._granted = 0

    # ------------------------------------------------------------------
    @property
    def tmax(self) -> int:
        """The per-switch per-second response cap."""
        return self._tmax

    def register_switch(self, switch: str) -> None:
        """Make a switch visible in the statistics even if it never responds."""
        self._switches.add(switch)

    def register_switches(self, switches: Iterable[str]) -> None:
        """Register many switches at once."""
        for switch in switches:
            self.register_switch(switch)

    def allow(self, switch: str, time_s: float) -> bool:
        """Request one ICMP response from ``switch`` at time ``time_s`` (seconds)."""
        self._switches.add(switch)
        key = (switch, int(time_s))
        if self._counts[key] >= self._tmax:
            self._denied += 1
            return False
        self._counts[key] += 1
        self._granted += 1
        return True

    # ------------------------------------------------------------------
    def responses_of_switch(self, switch: str) -> int:
        """Total ICMP responses sent by ``switch`` so far."""
        return sum(c for (s, _), c in self._counts.items() if s == switch)

    def per_second_counts(self, switch: str) -> List[int]:
        """The nonzero per-second counts of ``switch``."""
        return [c for (s, _), c in sorted(self._counts.items()) if s == switch]

    @property
    def granted(self) -> int:
        """Total responses granted."""
        return self._granted

    @property
    def denied(self) -> int:
        """Total responses suppressed by the cap."""
        return self._denied

    def usage_stats(self, total_seconds: int) -> IcmpUsageStats:
        """Compute the Table 1 distribution over ``total_seconds`` of operation.

        Every (registered switch, second) pair is a sample; seconds with no
        responses count as ``T = 0`` samples, matching the paper's methodology
        of reporting the distribution of per-second rates over a whole week.
        """
        if total_seconds < 1:
            raise ValueError("total_seconds must be >= 1")
        switches = sorted(self._switches)
        if not switches:
            return IcmpUsageStats(1.0, 0.0, 0.0, 0, 0)
        num_samples = len(switches) * total_seconds
        nonzero = {key: c for key, c in self._counts.items() if c > 0}
        num_nonzero = len(nonzero)
        num_low = sum(1 for c in nonzero.values() if c <= 3)
        num_high = num_nonzero - num_low
        num_zero = num_samples - num_nonzero
        max_rate = max(nonzero.values(), default=0)
        return IcmpUsageStats(
            fraction_zero=num_zero / num_samples,
            fraction_low=num_low / num_samples,
            fraction_high=num_high / num_samples,
            max_rate=int(max_rate),
            num_samples=num_samples,
        )

    def reset(self) -> None:
        """Clear all counters (statistics start over)."""
        self._counts.clear()
        self._denied = 0
        self._granted = 0
