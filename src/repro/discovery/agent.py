"""The 007 path discovery agent.

Upon a retransmission notification the agent (one logical instance per host;
this class keeps per-host state internally so a single object can serve a
whole simulation) decides whether to trace the flow:

* at most once per flow per epoch (a per-epoch path cache, which also
  remembers traces that discovered nothing so retransmitting flows don't
  drain the budget re-tracing),
* only if the VIP -> DIP mapping can be resolved (otherwise we might
  traceroute the Internet; a failed lookup sends no trace and costs no
  budget),
* at most ``Ct`` traceroutes per host per second (Theorem 1's bound, so the
  per-switch ICMP budget ``Tmax`` is never exceeded; fractional ``Ct``
  rounds up with a floor of one), and
* never for flows whose connection establishment itself failed.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Tuple

from repro.discovery.traceroute import TracerouteEngine, TracerouteResult
from repro.netsim.events import RetransmissionEvent
from repro.routing.fivetuple import FiveTuple
from repro.slb.loadbalancer import SlbQueryError, SoftwareLoadBalancer
from repro.topology.elements import DirectedLink


@dataclass(frozen=True)
class PathDiscoveryConfig:
    """Tunables of the path discovery agent."""

    #: maximum traceroutes a single host may start per second (Theorem 1's Ct).
    max_traceroutes_per_host_per_second: float = 10.0
    #: epoch duration in seconds (determines the per-epoch budget).
    epoch_duration_s: float = 30.0

    @property
    def per_epoch_budget(self) -> int:
        """Maximum traceroutes one host may start within an epoch.

        Ceiling semantics with a floor of one: a sub-1-per-epoch rate
        (``Ct * epoch_duration_s < 1``) must still allow a single trace, not
        truncate to a budget of zero and rate-limit every traceroute.
        """
        return max(
            1,
            math.ceil(self.max_traceroutes_per_host_per_second * self.epoch_duration_s),
        )

    @property
    def per_second_cap(self) -> int:
        """Maximum traceroutes one host may start within one second.

        Fractional ``Ct`` rounds up (a cap is a permission, not a quota), with
        a floor of one so a tiny rate never blocks tracing entirely.
        """
        return max(1, math.ceil(self.max_traceroutes_per_host_per_second))


@dataclass
class DiscoveredPath:
    """A path (possibly partial) discovered for a flow with retransmissions."""

    flow_id: int
    five_tuple: FiveTuple
    src_host: str
    dst_host: str
    links: List[DirectedLink]
    complete: bool
    retransmissions: int = 1
    epoch: int = 0

    @property
    def hop_count(self) -> int:
        """Number of links discovered (the ``h`` used for 1/h votes)."""
        return len(self.links)


@dataclass
class PathDiscoveryStats:
    """Counters describing the agent's behaviour (used by tests and Table 1)."""

    triggered: int = 0
    served_from_cache: int = 0
    rate_limited: int = 0
    slb_failures: int = 0
    traceroutes_sent: int = 0
    incomplete_traces: int = 0

    def reset(self) -> None:
        """Reset every counter to its field default (epoch rollover)."""
        for spec in fields(self):
            setattr(self, spec.name, spec.default)


class PathDiscoveryAgent:
    """Discovers the paths of flows that suffered retransmissions."""

    def __init__(
        self,
        traceroute: TracerouteEngine,
        slb: Optional[SoftwareLoadBalancer] = None,
        config: Optional[PathDiscoveryConfig] = None,
    ) -> None:
        self._traceroute = traceroute
        self._slb = slb
        self._config = config or PathDiscoveryConfig()
        #: per-epoch path cache; ``None`` records a trace that discovered no
        #: links, so later retransmissions of the flow don't re-trace it.
        #: Deliberate trade-off: under lossy probes a transiently empty trace
        #: suppresses the flow's votes until the next epoch, in exchange for
        #: retransmission storms not draining the host budget on re-traces.
        self._cache: Dict[Tuple, Optional[DiscoveredPath]] = {}
        self._per_host_counts: Dict[str, int] = defaultdict(int)
        self._per_host_second_counts: Dict[Tuple[str, int], int] = defaultdict(int)
        self._current_epoch: Optional[int] = None
        self.stats = PathDiscoveryStats()

    # ------------------------------------------------------------------
    @property
    def config(self) -> PathDiscoveryConfig:
        """The agent's configuration."""
        return self._config

    def new_epoch(self, epoch: int) -> None:
        """Reset the per-epoch path cache and rate counters."""
        self._cache.clear()
        self._per_host_counts.clear()
        self._per_host_second_counts.clear()
        self._current_epoch = epoch

    # ------------------------------------------------------------------
    def discover(self, event: RetransmissionEvent) -> Optional[DiscoveredPath]:
        """Handle one retransmission event; returns the discovered path or ``None``.

        ``None`` means the agent chose not to (or could not) trace: the host
        exhausted its traceroute budget, the SLB query failed, or nothing at
        all was reachable.
        """
        if self._current_epoch != event.epoch:
            self.new_epoch(event.epoch)
        self.stats.triggered += 1

        cache_key = event.five_tuple.canonical_key()
        if cache_key in self._cache:
            cached = self._cache[cache_key]
            self.stats.served_from_cache += 1
            if cached is not None:
                cached.retransmissions += event.retransmissions
            return cached

        # Peek at the budget first (an exhausted host shouldn't even query the
        # SLB), but only *charge* it once a trace is actually sent: a failed
        # VIP->DIP lookup sends no traceroute and must not burn trace budget.
        if not self._has_budget(event.src_host, event.timestamp):
            self.stats.rate_limited += 1
            return None

        data_tuple = self._resolve_data_tuple(event)
        if data_tuple is None:
            self.stats.slb_failures += 1
            return None
        self._charge_budget(event.src_host, event.timestamp)

        trace = self._traceroute.trace(
            data_tuple, event.src_host, event.dst_host, time_s=event.timestamp
        )
        self.stats.traceroutes_sent += 1
        if not trace.complete:
            self.stats.incomplete_traces += 1
        if not trace.discovered_links:
            self._cache[cache_key] = None
            return None

        discovered = DiscoveredPath(
            flow_id=event.flow_id,
            five_tuple=event.five_tuple,
            src_host=event.src_host,
            dst_host=event.dst_host,
            links=list(trace.discovered_links),
            complete=trace.complete,
            retransmissions=event.retransmissions,
            epoch=event.epoch,
        )
        self._cache[cache_key] = discovered
        return discovered

    # ------------------------------------------------------------------
    def _resolve_data_tuple(self, event: RetransmissionEvent) -> Optional[FiveTuple]:
        """Rewrite the application five-tuple (VIP) into the on-wire tuple (DIP)."""
        if self._slb is None:
            return event.five_tuple
        try:
            dip = self._slb.query_dip(event.five_tuple)
        except SlbQueryError:
            return None
        return event.five_tuple.with_destination(dip)

    def _has_budget(self, host: str, timestamp: float) -> bool:
        """Whether the host may start a traceroute now (no budget is charged)."""
        second_key = (host, int(timestamp))
        return (
            self._per_host_second_counts[second_key] < self._config.per_second_cap
            and self._per_host_counts[host] < self._config.per_epoch_budget
        )

    def _charge_budget(self, host: str, timestamp: float) -> None:
        """Charge one traceroute against the host's per-second and per-epoch budgets.

        Only called once the agent has decided to actually send a trace.
        """
        self._per_host_second_counts[(host, int(timestamp))] += 1
        self._per_host_counts[host] += 1
