"""The 007 path discovery agent.

Upon a retransmission notification the agent (one logical instance per host;
this class keeps per-host state internally so a single object can serve a
whole simulation) decides whether to trace the flow:

* at most once per flow per epoch (a per-epoch path cache),
* at most ``Ct`` traceroutes per host per second (Theorem 1's bound, so the
  per-switch ICMP budget ``Tmax`` is never exceeded),
* only if the VIP -> DIP mapping can be resolved (otherwise we might
  traceroute the Internet), and
* never for flows whose connection establishment itself failed.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.discovery.traceroute import TracerouteEngine, TracerouteResult
from repro.netsim.events import RetransmissionEvent
from repro.routing.fivetuple import FiveTuple
from repro.slb.loadbalancer import SlbQueryError, SoftwareLoadBalancer
from repro.topology.elements import DirectedLink


@dataclass(frozen=True)
class PathDiscoveryConfig:
    """Tunables of the path discovery agent."""

    #: maximum traceroutes a single host may start per second (Theorem 1's Ct).
    max_traceroutes_per_host_per_second: float = 10.0
    #: epoch duration in seconds (determines the per-epoch budget).
    epoch_duration_s: float = 30.0

    @property
    def per_epoch_budget(self) -> int:
        """Maximum traceroutes one host may start within an epoch."""
        return int(self.max_traceroutes_per_host_per_second * self.epoch_duration_s)


@dataclass
class DiscoveredPath:
    """A path (possibly partial) discovered for a flow with retransmissions."""

    flow_id: int
    five_tuple: FiveTuple
    src_host: str
    dst_host: str
    links: List[DirectedLink]
    complete: bool
    retransmissions: int = 1
    epoch: int = 0

    @property
    def hop_count(self) -> int:
        """Number of links discovered (the ``h`` used for 1/h votes)."""
        return len(self.links)


@dataclass
class PathDiscoveryStats:
    """Counters describing the agent's behaviour (used by tests and Table 1)."""

    triggered: int = 0
    served_from_cache: int = 0
    rate_limited: int = 0
    slb_failures: int = 0
    traceroutes_sent: int = 0
    incomplete_traces: int = 0


class PathDiscoveryAgent:
    """Discovers the paths of flows that suffered retransmissions."""

    def __init__(
        self,
        traceroute: TracerouteEngine,
        slb: Optional[SoftwareLoadBalancer] = None,
        config: Optional[PathDiscoveryConfig] = None,
    ) -> None:
        self._traceroute = traceroute
        self._slb = slb
        self._config = config or PathDiscoveryConfig()
        self._cache: Dict[Tuple, DiscoveredPath] = {}
        self._per_host_counts: Dict[str, int] = defaultdict(int)
        self._per_host_second_counts: Dict[Tuple[str, int], int] = defaultdict(int)
        self._current_epoch: Optional[int] = None
        self.stats = PathDiscoveryStats()

    # ------------------------------------------------------------------
    @property
    def config(self) -> PathDiscoveryConfig:
        """The agent's configuration."""
        return self._config

    def new_epoch(self, epoch: int) -> None:
        """Reset the per-epoch path cache and rate counters."""
        self._cache.clear()
        self._per_host_counts.clear()
        self._per_host_second_counts.clear()
        self._current_epoch = epoch

    # ------------------------------------------------------------------
    def discover(self, event: RetransmissionEvent) -> Optional[DiscoveredPath]:
        """Handle one retransmission event; returns the discovered path or ``None``.

        ``None`` means the agent chose not to (or could not) trace: the host
        exhausted its traceroute budget, the SLB query failed, or nothing at
        all was reachable.
        """
        if self._current_epoch != event.epoch:
            self.new_epoch(event.epoch)
        self.stats.triggered += 1

        cache_key = event.five_tuple.canonical_key()
        cached = self._cache.get(cache_key)
        if cached is not None:
            self.stats.served_from_cache += 1
            cached.retransmissions += event.retransmissions
            return cached

        if not self._consume_budget(event.src_host, event.timestamp):
            self.stats.rate_limited += 1
            return None

        data_tuple = self._resolve_data_tuple(event)
        if data_tuple is None:
            self.stats.slb_failures += 1
            return None

        trace = self._traceroute.trace(
            data_tuple, event.src_host, event.dst_host, time_s=event.timestamp
        )
        self.stats.traceroutes_sent += 1
        if not trace.complete:
            self.stats.incomplete_traces += 1
        if not trace.discovered_links:
            return None

        discovered = DiscoveredPath(
            flow_id=event.flow_id,
            five_tuple=event.five_tuple,
            src_host=event.src_host,
            dst_host=event.dst_host,
            links=list(trace.discovered_links),
            complete=trace.complete,
            retransmissions=event.retransmissions,
            epoch=event.epoch,
        )
        self._cache[cache_key] = discovered
        return discovered

    # ------------------------------------------------------------------
    def _resolve_data_tuple(self, event: RetransmissionEvent) -> Optional[FiveTuple]:
        """Rewrite the application five-tuple (VIP) into the on-wire tuple (DIP)."""
        if self._slb is None:
            return event.five_tuple
        try:
            dip = self._slb.query_dip(event.five_tuple)
        except SlbQueryError:
            return None
        return event.five_tuple.with_destination(dip)

    def _consume_budget(self, host: str, timestamp: float) -> bool:
        """Charge one traceroute against the host's per-second and per-epoch budgets."""
        per_second_cap = max(1, int(self._config.max_traceroutes_per_host_per_second))
        second_key = (host, int(timestamp))
        if self._per_host_second_counts[second_key] >= per_second_cap:
            return False
        if self._per_host_counts[host] >= self._config.per_epoch_budget:
            return False
        self._per_host_second_counts[second_key] += 1
        self._per_host_counts[host] += 1
        return True
